package rebalance

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/shard"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/xshard"
)

func TestMarkerCodec(t *testing.T) {
	m := Marker{Epoch: 7, Shards: 4, PrevShards: 2}
	cmd, err := FenceCommand(m)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != command.OpFence || len(cmd.Keys()) != 0 {
		t.Fatalf("fence command malformed: %v keys=%v", cmd.Op, cmd.Keys())
	}
	got, err := DecodeMarker(cmd.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round-trip %+v, want %+v", got, m)
	}
}

// keyHomedAt finds a key with the given homes under the two routers —
// the raw material of every gate scenario.
func keyHomedAt(t *testing.T, prev, next shard.Router, prevHome, nextHome int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if prev.Shard(k) == prevHome && next.Shard(k) == nextHome {
			return k
		}
	}
	t.Fatalf("no key with homes %d→%d", prevHome, nextHome)
	return ""
}

// recordingApplier logs applied commands.
type recordingApplier struct {
	mu   sync.Mutex
	keys []string
}

func (r *recordingApplier) Apply(cmd command.Command) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys = append(r.keys, cmd.Key)
	return []byte(cmd.Key)
}

func (r *recordingApplier) applied() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.keys...)
}

// newTestCoordinator builds an unbound coordinator suitable for driving
// the gate directly: no engines, a standalone commit table, manual fences.
func newTestCoordinator(shards int) (*Coordinator, *recordingApplier) {
	co := NewCoordinator(Config{Self: 0, Now: time.Now}, shards)
	co.table = xshard.NewTable(xshard.TableConfig{Self: 0, Exec: protocol.ApplierFunc(func(command.Command) []byte { return nil })})
	app := &recordingApplier{}
	return co, app
}

// applyThrough pushes one delivery through the gate and reports whether
// its completion fired synchronously.
func applyThrough(co *Coordinator, gate protocol.Applier, cmd command.Command) (fired bool, res protocol.Result) {
	da := gate.(protocol.DeferringApplier)
	ch := make(chan protocol.Result, 1)
	da.ApplyDeferred(cmd, timestamp.Zero, func(r protocol.Result) { ch <- r })
	select {
	case r := <-ch:
		return true, r
	default:
		return false, protocol.Result{}
	}
}

// TestGateQueuesUntilHandoffCompletes drives a 2→4 growth by hand: a
// new-epoch command on a moved key parks until its source group fences,
// imports and drains, then applies in arrival order; same-epoch traffic on
// unmoved keys flows throughout.
func TestGateQueuesUntilHandoffCompletes(t *testing.T) {
	co, app := newTestCoordinator(2)
	prev, next := shard.NewRouterAt(0, 2), shard.NewRouterAt(1, 4)
	moved := keyHomedAt(t, prev, next, 0, 2)
	stayed := keyHomedAt(t, prev, next, 0, 0)

	gate2 := co.Applier(2, app)
	gate0 := co.Applier(0, app)

	// The new epoch reaches group 2 (its birth group) before group 0's
	// fence: the moved key's command must wait for group 0's handoff.
	co.onFence(2, Marker{Epoch: 1, Shards: 4, PrevShards: 2}) // install via first sighting
	cmd := command.Put(moved, nil)
	cmd.Epoch = 1
	cmd.ID = command.ID{Node: 1, Seq: 1}
	if fired, _ := applyThrough(co, gate2, cmd); fired {
		t.Fatal("moved-key command applied before its source group's handoff")
	}
	if co.QueuedCommands() != 1 {
		t.Fatalf("queued = %d, want 1", co.QueuedCommands())
	}

	// Unmoved traffic is unaffected, old-epoch traffic in group 0 too.
	ok := command.Put(stayed, nil)
	ok.Epoch = 1
	ok.ID = command.ID{Node: 1, Seq: 2}
	if fired, _ := applyThrough(co, gate0, ok); !fired {
		t.Fatal("unmoved-key command was gated")
	}
	old := command.Put(stayed, nil)
	old.ID = command.ID{Node: 1, Seq: 3}
	if fired, _ := applyThrough(co, gate0, old); !fired {
		t.Fatal("pre-fence old-epoch command was gated")
	}

	// Group 0's fence completes the handoff (no pending transactions, no
	// state hooks in this unit) and releases the queue.
	co.onFence(0, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	co.onFence(1, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	deadline := time.Now().Add(5 * time.Second)
	for co.QueuedCommands() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after handoff")
		}
		time.Sleep(time.Millisecond)
	}
	got := app.applied()
	if len(got) != 3 || got[len(got)-1] != moved {
		t.Fatalf("applied %v; want the released command last", got)
	}
	if co.Resizing() {
		t.Fatal("transition still pending after all fences and handoffs")
	}
	if co.Epoch() != 1 || co.Shards() != 4 {
		t.Fatalf("epoch/shards = %d/%d, want 1/4", co.Epoch(), co.Shards())
	}
}

// TestGateSkipsStaleAndReroutes checks the exactly-once path for a command
// routed under the old epoch but ordered after its group's fence: every
// replica skips it; only the submitting node re-routes it.
func TestGateSkipsStaleAndReroutes(t *testing.T) {
	co, app := newTestCoordinator(2)
	prev, next := shard.NewRouterAt(0, 2), shard.NewRouterAt(1, 4)
	moved := keyHomedAt(t, prev, next, 0, 2)

	var resubmitted []command.Command
	co.resubmit = func(cmd command.Command, done protocol.DoneFunc) {
		resubmitted = append(resubmitted, cmd)
		if done != nil {
			done(protocol.Result{Value: []byte("rerouted")})
		}
	}
	gate0 := co.Applier(0, app)
	for g := 0; g < 2; g++ {
		co.onFence(g, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	}

	// Someone else's stale command: skipped silently.
	theirs := command.Put(moved, nil)
	theirs.ID = command.ID{Node: 2, Seq: 9}
	fired, res := applyThrough(co, gate0, theirs)
	if !fired || res.Err != nil {
		t.Fatalf("stale skip must complete synchronously, got %v/%v", fired, res)
	}
	if len(resubmitted) != 0 {
		t.Fatal("a non-proposer re-routed someone else's command")
	}

	// Our own stale command: re-routed, result forwarded.
	ours := command.Put(moved, nil)
	ours.ID = command.ID{Node: 0, Seq: 1} // Self == 0
	fired, res = applyThrough(co, gate0, ours)
	if !fired || string(res.Value) != "rerouted" {
		t.Fatalf("stale reroute result = %v/%q", fired, res.Value)
	}
	if len(resubmitted) != 1 || resubmitted[0].Key != moved {
		t.Fatalf("resubmitted %v", resubmitted)
	}
	if got := app.applied(); len(got) != 0 {
		t.Fatalf("stale commands were applied locally: %v", got)
	}
}

// TestGateKillsStaleTransactionPieces checks the epoch consistency of
// cross-shard transactions: a piece ordered after its group's fence under
// the old epoch kills the transaction (deterministically), reporting
// ErrEpochRetry to the coordinator's parked callback.
func TestGateKillsStaleTransactionPieces(t *testing.T) {
	co, app := newTestCoordinator(2)
	prev, next := shard.NewRouterAt(0, 2), shard.NewRouterAt(1, 4)
	moved := keyHomedAt(t, prev, next, 0, 2)
	other := keyHomedAt(t, prev, next, 1, 1)

	gate0 := co.Applier(0, app)
	xid := xshard.XID{Node: 0, Seq: 1}
	ops := []command.Command{command.Put(moved, nil), command.Put(other, nil)}
	var got protocol.Result
	fired := make(chan struct{})
	co.table.Expect(xid, []int32{0, 1}, ops, 0, func(r protocol.Result) { got = r; close(fired) })

	piece, err := xshard.PieceCommand(xid, []int32{0, 1}, ops, ops[:1])
	if err != nil {
		t.Fatal(err)
	}
	piece.ID = command.ID{Node: 0, Seq: 5}
	for g := 0; g < 2; g++ {
		co.onFence(g, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	}
	if ok, _ := applyThrough(co, gate0, piece); !ok {
		t.Fatal("stale piece delivery did not complete")
	}
	<-fired
	if got.Err != xshard.ErrEpochRetry {
		t.Fatalf("transaction callback err = %v, want ErrEpochRetry", got.Err)
	}
}

// TestRouterAtRemembersEpochHistory checks survivors can rebuild old
// routers after several resizes.
func TestRouterAtRemembersEpochHistory(t *testing.T) {
	co, _ := newTestCoordinator(2)
	co.onFence(0, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	co.onFence(1, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	if r := co.RouterAt(0); r.Shards() != 2 || r.Epoch() != 0 {
		t.Fatalf("RouterAt(0) = %d shards at epoch %d", r.Shards(), r.Epoch())
	}
	if r := co.RouterAt(1); r.Shards() != 4 {
		t.Fatalf("RouterAt(1) = %d shards", r.Shards())
	}
	if r := co.RouterAt(99); r.Shards() != 4 {
		t.Fatalf("unknown epoch fell back to %d shards, want current", r.Shards())
	}
}

// TestCompetingMarkersFirstWins: the second marker of one epoch (a
// concurrent resize that lost group 0's total order) must be ignored.
func TestCompetingMarkersFirstWins(t *testing.T) {
	co, _ := newTestCoordinator(2)
	co.onFence(0, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	co.onFence(0, Marker{Epoch: 1, Shards: 8, PrevShards: 2}) // the loser
	if co.Shards() != 4 {
		t.Fatalf("loser marker took effect: %d shards", co.Shards())
	}
	co.onFence(1, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	if co.Resizing() {
		t.Fatal("transition wedged by the losing marker")
	}
}

// TestStaleVerdictUsesGroupFencePrefix pins the determinism fix for
// back-to-back resizes: the apply-vs-skip verdict for an old-epoch
// command must be computed against the delivering group's own fence
// prefix (identical on every replica at that delivery position), never
// this node's global epoch, which other groups' fences advance at
// replica-dependent times.
func TestStaleVerdictUsesGroupFencePrefix(t *testing.T) {
	co, app := newTestCoordinator(2)
	gate0 := co.Applier(0, app)

	// Epoch 1 (2→4) completes everywhere.
	for g := 0; g < 2; g++ {
		co.onFence(g, Marker{Epoch: 1, Shards: 4, PrevShards: 2})
	}
	// Epoch 2 (4→8) installs via group 1's fence; group 0 has NOT fenced
	// epoch 2 yet, so its prefix is still epoch 1.
	co.onFence(1, Marker{Epoch: 2, Shards: 8, PrevShards: 4})
	if co.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", co.Epoch())
	}

	// A key that lives in group 0 under epochs 0 and 1 but moves away
	// under epoch 2's routing.
	r0, r1, r2 := shard.NewRouterAt(0, 2), shard.NewRouterAt(1, 4), shard.NewRouterAt(2, 8)
	var key string
	for i := 0; key == "" && i < 200000; i++ {
		k := fmt.Sprintf("gp-%d", i)
		if r0.Shard(k) == 0 && r1.Shard(k) == 0 && r2.Shard(k) != 0 {
			key = k
		}
	}
	if key == "" {
		t.Fatal("no probe key found")
	}

	// Old-epoch command delivered in group 0 after its epoch-1 fence: at
	// this delivery position every replica sees prefix epoch 1, under
	// which the key has not moved — it must apply, even on a replica
	// whose global epoch already reached 2.
	cmd := command.Put(key, nil)
	cmd.ID = command.ID{Node: 2, Seq: 1}
	fired, res := applyThrough(co, gate0, cmd)
	if !fired || res.Err != nil {
		t.Fatalf("delivery did not complete: %v/%v", fired, res)
	}
	if got := app.applied(); len(got) != 1 || got[0] != key {
		t.Fatalf("command was skipped as stale under the node-global epoch: applied=%v", got)
	}
}

// TestReleasedVerdictUsesDeliveryPosition pins the companion fix: a
// queued command is re-judged at release against the fence prefix
// recorded at its delivery position, not the prefix at the
// (replica-dependent) release moment.
func TestReleasedVerdictUsesDeliveryPosition(t *testing.T) {
	co, _ := newTestCoordinator(2)
	r1, r2 := shard.NewRouterAt(1, 4), shard.NewRouterAt(2, 8)
	var key string
	for i := 0; key == "" && i < 200000; i++ {
		k := fmt.Sprintf("rp-%d", i)
		if r1.Shard(k) == 2 && r2.Shard(k) != 2 {
			key = k
		}
	}
	if key == "" {
		t.Fatal("no probe key found")
	}
	co.mu.Lock()
	co.epochShards[1], co.epochShards[2] = 4, 8
	cmd := command.Put(key, nil)
	cmd.Epoch = 1
	// Delivered in group 2 while its prefix was epoch 1 (not stale);
	// by release time the group has fenced epoch 2 and the key moved.
	co.groupEpoch[2] = 2
	q := &queuedCmd{group: 2, groupEpoch: 1, cmd: cmd}
	if v := co.classifyReleasedLocked(q); v != gatePass {
		co.mu.Unlock()
		t.Fatalf("release verdict = %v, want pass (judged by delivery position)", v)
	}
	// The same command delivered AFTER the epoch-2 fence is stale.
	q2 := &queuedCmd{group: 2, groupEpoch: 2, cmd: cmd}
	if v := co.classifyReleasedLocked(q2); v != gateStale {
		co.mu.Unlock()
		t.Fatalf("post-fence release verdict = %v, want stale", v)
	}
	co.mu.Unlock()
}

// TestConcurrentFencesDuringScheduledRetirement races two groups' fence
// deliveries of one marker against a still-scheduled retirement from the
// previous shrink: whichever delivery performs the retirement, neither
// group's fence event may be dropped (a dropped fence shifts that group's
// epoch cut to a later re-proposed fence and diverges from peers).
func TestConcurrentFencesDuringScheduledRetirement(t *testing.T) {
	for i := 0; i < 50; i++ {
		co, _ := newTestCoordinator(4)
		// A completed 4→2 shrink with retirement still scheduled.
		for g := 0; g < 4; g++ {
			co.onFence(g, Marker{Epoch: 1, Shards: 2, PrevShards: 4})
		}
		if co.Resizing() {
			t.Fatal("shrink did not complete")
		}
		co.mu.Lock()
		if co.retireTo != 2 {
			co.mu.Unlock()
			t.Fatalf("retirement not scheduled: %d", co.retireTo)
		}
		co.mu.Unlock()

		m := Marker{Epoch: 2, Shards: 2, PrevShards: 2}
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				co.onFence(g, m)
			}(g)
		}
		wg.Wait()
		if co.Resizing() {
			t.Fatal("a fence delivery was dropped during the retire window: transition never completed")
		}
		if co.Epoch() != 2 {
			t.Fatalf("epoch = %d, want 2", co.Epoch())
		}
	}
}
