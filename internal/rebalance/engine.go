package rebalance

import (
	"context"
	"errors"
	"fmt"

	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/flight"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/shard"
	"github.com/caesar-consensus/caesar/internal/xshard"
)

// ErrResizeInProgress rejects a resize initiated while another transition
// is still completing on this node.
var ErrResizeInProgress = errors.New("rebalance: a resize is already in progress")

// ErrResizeConflict reports that a concurrently initiated resize won the
// epoch: the deployment was resized, but to the winner's shard count.
var ErrResizeConflict = errors.New("rebalance: a concurrent resize won the epoch")

// maxEpochRetries bounds re-proposals of a command that keeps landing
// behind resize fences; exceeding it means the deployment is resizing
// continuously, and the client sees the retry error rather than waiting
// forever.
const maxEpochRetries = 8

// Engine layers live resizing over the cross-shard engine: submissions
// pass through (picking up automatic re-proposal when a resize kills a
// straddling transaction), and Resize drives an epoch change end to end.
type Engine struct {
	x  *xshard.Engine
	co *Coordinator
}

var _ protocol.Engine = (*Engine)(nil)

// NewEngine wires the resize layer over the cross-shard engine. Every
// group of x must apply commands through co.Applier (outermost) so fences
// and epoch checks intercept deliveries.
func NewEngine(x *xshard.Engine, co *Coordinator) *Engine {
	e := &Engine{x: x, co: co}
	co.bind(x, e.Submit)
	return e
}

// Inner returns the wrapped cross-shard engine.
func (e *Engine) Inner() *xshard.Engine { return e.x }

// Coordinator returns the node's rebalance coordinator.
func (e *Engine) Coordinator() *Coordinator { return e.co }

// Shards returns the current epoch's shard count.
func (e *Engine) Shards() int { return e.co.Shards() }

// Submit implements protocol.Engine. A transaction killed because it
// straddled a resize marker (xshard.ErrEpochRetry) is re-proposed under
// the new routing automatically, a bounded number of times — as is a
// submission that raced a shrink and reached a group after its
// retirement (shard.ErrNoGroup): by then the router has moved on, so the
// retry routes to the key's live home.
func (e *Engine) Submit(cmd command.Command, done protocol.DoneFunc) {
	e.submit(cmd, done, 0)
}

func (e *Engine) submit(cmd command.Command, done protocol.DoneFunc, attempt int) {
	e.x.Submit(cmd, func(res protocol.Result) {
		retriable := errors.Is(res.Err, xshard.ErrEpochRetry) || errors.Is(res.Err, shard.ErrNoGroup)
		if retriable && attempt < maxEpochRetries {
			fresh := cmd
			fresh.ID = command.ID{}
			e.submit(fresh, done, attempt+1)
			return
		}
		if done != nil {
			done(res)
		}
	})
}

// Start implements protocol.Engine.
func (e *Engine) Start() {
	e.x.Start()
	e.co.start()
}

// Stop implements protocol.Engine: the groups stop first (their in-flight
// submissions fail with ErrStopped), then the coordinator fails whatever
// deliveries were still gated. Idempotent.
func (e *Engine) Stop() {
	e.x.Stop()
	e.co.stop()
}

// Resize changes the deployment's consensus-group count to shards, live:
// it proposes the resize marker through group 0 — whose total order of
// fences decides the epoch cluster-wide — propagates it to every other
// existing group, and waits until this node's transition completes (every
// fence delivered, every source group's state handed off). Other nodes
// complete on their own as their fences deliver; survivors re-propose
// missing fences, so a crashed initiator cannot wedge the transition.
//
// Returns nil when the resize completed locally, ErrResizeConflict when a
// concurrent resize won the epoch (the deployment resized, but to the
// winner's count), ErrResizeInProgress when called mid-transition, or the
// context's error. A no-op resize (shards == current) returns nil
// immediately.
func (e *Engine) Resize(ctx context.Context, shards int) error {
	if shards < 1 {
		return fmt.Errorf("rebalance: invalid shard count %d", shards)
	}
	co := e.co
	co.mu.Lock()
	if co.pending != nil {
		co.mu.Unlock()
		return ErrResizeInProgress
	}
	if shards == co.shards {
		co.mu.Unlock()
		return nil
	}
	m := Marker{Epoch: co.epoch + 1, Shards: int32(shards), PrevShards: int32(co.shards)}
	co.mu.Unlock()
	co.cfg.Flight.Eventf(flight.KindResize,
		"resize initiated here: epoch %d, %d -> %d group(s)", m.Epoch, m.PrevShards, m.Shards)

	fence, err := FenceCommand(m)
	if err != nil {
		return err
	}
	// Decide: group 0 serializes competing resizes.
	if err := e.submitFence(ctx, 0, fence); err != nil {
		return err
	}
	co.mu.Lock()
	won := co.epochShards[m.Epoch] == m.Shards
	co.mu.Unlock()
	if !won {
		return ErrResizeConflict
	}
	// Fence the remaining old groups (the sweeper finishes this if we
	// crash or a submission is lost).
	errs := make(chan error, int(m.PrevShards))
	for g := 1; g < int(m.PrevShards); g++ {
		go func(g int) { errs <- e.submitFence(ctx, g, fence) }(g)
	}
	for g := 1; g < int(m.PrevShards); g++ {
		if err := <-errs; err != nil && ctx.Err() != nil {
			return err
		}
	}
	// Hand off: wait for the local transition to finish. The waiter
	// channel also closes when the coordinator stops mid-transition, so
	// completion is re-checked from state, not inferred from the wakeup.
	select {
	case <-co.WaitEpoch(m.Epoch):
	case <-ctx.Done():
		return ctx.Err()
	}
	co.mu.Lock()
	completed := co.epoch >= m.Epoch && co.pending == nil
	co.mu.Unlock()
	if !completed {
		return protocol.ErrStopped
	}
	return nil
}

// submitFence proposes the fence to one group and waits for its local
// delivery.
func (e *Engine) submitFence(ctx context.Context, group int, fence command.Command) error {
	ch := make(chan protocol.Result, 1)
	e.x.Inner().SubmitTo(group, fence, func(res protocol.Result) { ch <- res })
	select {
	case res := <-ch:
		return res.Err
	case <-ctx.Done():
		return ctx.Err()
	}
}
