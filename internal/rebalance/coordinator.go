package rebalance

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/flight"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/shard"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/trace"
	"github.com/caesar-consensus/caesar/internal/xshard"
)

// Config tunes one node's rebalance coordinator.
type Config struct {
	// Self is this node's ID; it staggers fence re-proposals and decides
	// which skipped commands this node re-routes (only its own).
	Self timestamp.NodeID
	// Export returns a copy of the locally stored entries whose key
	// satisfies pred; called while applying a source group's fence, so
	// the snapshot sits at a replica-deterministic point of the group's
	// history. May be nil (no state to hand off — the node-shared store
	// of this repository's stack needs none; see internal/stack).
	Export func(pred func(key string) bool) map[string][]byte
	// Import applies a handed-off snapshot before the destination's first
	// command; deployments with per-group stores route each key to its
	// new group's store here. Import must be atomic against the
	// destination store's other writers: cross-shard commit-table
	// executions are not gated behind handoffs (their pieces are exempt
	// from the gate, or the handoff wait-graph would cycle), so a
	// transaction may write a migrating key between Export and Import.
	Import func(snap map[string][]byte)
	// FenceTimeout is how long an installed epoch may wait for a group's
	// fence before this node re-proposes it (a crashed initiator's
	// propagation is finished by survivors). Default 2s.
	FenceTimeout time.Duration
	// RetireDelay is the grace between a shrink completing and the
	// retired groups stopping, covering stragglers still proposing under
	// the old epoch. Default 3s.
	RetireDelay time.Duration
	// SweepInterval is the maintenance timer granularity. Default 250ms.
	SweepInterval time.Duration
	// Now is the clock deadlines are computed from. Default time.Now.
	Now func() time.Time
	// Journal, when non-nil, durably records each epoch this node
	// installs (internal/wal): a restarted node rebuilds its routing
	// epoch history from these records. Called once per installed epoch,
	// synchronously (the install is not visible to deliveries until it
	// returns); it must not call back into the coordinator.
	Journal func(m Marker)
	// OnInstall, when non-nil, observes each epoch this node installs,
	// with the same discipline as Journal: called once per installed
	// epoch, synchronously before any delivery can observe the new epoch,
	// and it must not call back into the coordinator or block. The node
	// stack feeds its audit epoch tracker (internal/audit) from it so
	// writes stamped with the new epoch attribute to the right groups.
	OnInstall func(m Marker)
	// Trace, when non-nil, records each fence delivery this node applies,
	// tying resize progress into command histories.
	Trace *trace.Ring
	// Flight, when non-nil, journals resize initiations and epoch
	// installs into the node's flight recorder (internal/flight).
	Flight *flight.Recorder
}

func (c Config) withDefaults() Config {
	if c.FenceTimeout == 0 {
		c.FenceTimeout = 2 * time.Second
	}
	if c.RetireDelay == 0 {
		c.RetireDelay = 3 * time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// handoff tracks one source group's state transfer during a transition.
type handoff struct {
	// imported: the moving keys were exported at the fence point and
	// imported for their destinations.
	imported bool
	// drained: every cross-shard transaction the group ordered before its
	// fence has resolved (Table.AwaitGroupDrain fired).
	drained bool
}

func (h *handoff) done() bool { return h.imported && h.drained }

// transition is one in-flight epoch change.
type transition struct {
	marker     Marker
	prev, next shard.Router
	// fenced marks the old groups whose fence this replica delivered.
	fenced map[int]bool
	// sources maps each group losing keys to its handoff state.
	sources   map[int]*handoff
	startedAt time.Time
}

// queuedCmd is one gated delivery: a command that reached its new home
// before the keys' handoff completed. It applies — in arrival order —
// once the handoff releases it. groupEpoch pins the group's fence prefix
// at the delivery position: the release-time verdict must be computed
// against the epoch state the command was delivered under, which is
// identical on every replica, not against whatever epoch this replica
// reached by the (timing-dependent) moment of release.
type queuedCmd struct {
	group      int
	groupEpoch uint32
	cmd        command.Command
	ts         timestamp.Timestamp
	done       func(protocol.Result)
	// releasing marks an entry whose apply is in flight: it stays in the
	// queue — still claiming its keys, still ordering later same-key
	// traffic behind it — until the apply returns.
	releasing bool
}

// groupKey scopes the per-key FIFO accounting to one group: the queue
// preserves each group's delivery order per key, while cross-group
// ordering of a migrating key is the handoff protocol's job (tying the
// two together can deadlock a source group's drain on a destination's).
type groupKey struct {
	group int
	key   string
}

// gateVerdict classifies one delivery against the epoch state.
type gateVerdict uint8

const (
	// gatePass: apply now.
	gatePass gateVerdict = iota
	// gateQueue: park until the keys' handoff (or the epoch's install)
	// releases it.
	gateQueue
	// gateStale: routed under an outdated epoch and ordered after the
	// group's fence, with at least one key now homed elsewhere — skip
	// here (deterministically, on every replica) and re-route.
	gateStale
	// gateDropMarker: a cross-shard abort marker that lost to a queued
	// piece of its own group — the piece was ordered first, the marker
	// must not kill the transaction.
	gateDropMarker
)

// fenceEvent is a fence delivery deferred because an earlier transition is
// still in progress; it is replayed when that transition completes.
type fenceEvent struct {
	group  int
	marker Marker
}

// Coordinator is one node's rebalancing brain: it owns the epoch table,
// installs transitions when fences deliver, gates every group's deliveries
// against the epoch state, runs the state handoff, and retires groups
// after a shrink. One Coordinator serves all of a node's groups.
type Coordinator struct {
	cfg Config

	// The declared node-wide nesting order (enforced by caesarlint):
	// the rebalance gate is the outermost lock, the commit table below
	// it, the store innermost. The PR-5 four-arm deadlock came from the
	// gate and the table waiting on each other through callbacks; both
	// now run callbacks outside their locks, and any future nesting must
	// follow this order. The chain lives on the first-acquired lock.
	//caesarlint:lockorder gate < table < store
	mu sync.Mutex
	// Wired by bind (Engine construction).
	inner    *shard.Engine
	table    *xshard.Table
	resubmit func(command.Command, protocol.DoneFunc)

	epoch  uint32
	shards int
	// epochShards remembers every epoch's shard count, so routers of past
	// epochs can be rebuilt (survivor-side abort markers, stale checks).
	epochShards map[uint32]int32
	// groupEpoch is, per group, the highest epoch the group has passed a
	// fence for (or was created at).
	groupEpoch map[int]uint32
	pending    *transition
	deferred   []fenceEvent

	// queue holds gated deliveries in arrival order; queuedKeys counts
	// queued commands per group and key so later deliveries of the same
	// group on a queued key keep that group's order (FIFO behind the
	// queue).
	queue      []*queuedCmd
	queuedKeys map[groupKey]int
	draining   bool
	// drainAgain records a drain request that arrived while another
	// goroutine was draining; the active drainer re-runs instead of the
	// wakeup being lost.
	drainAgain bool

	// inners holds each group's inner applier chain for queue drains.
	inners map[int]protocol.Applier

	// Scheduled retirement after a shrink.
	retireTo int
	retireAt time.Time

	// waiters are Resize callers parked until an epoch's transition
	// completes locally.
	waiters []waiter

	running bool
	stopCh  chan struct{}
	doneCh  chan struct{}
}

type waiter struct {
	epoch uint32
	ch    chan struct{}
}

// NewCoordinator builds the coordinator of a node starting at epoch 0 with
// the given shard count. It must be wired to the engines with bind (done
// by NewEngine) before traffic flows; its Applier method is safe to use
// while constructing the groups.
func NewCoordinator(cfg Config, shards int) *Coordinator {
	if shards < 1 {
		shards = 1
	}
	return NewCoordinatorAt(cfg, map[uint32]int32{0: int32(shards)}, 0)
}

// NewCoordinatorAt builds a coordinator restored to a recovered epoch
// history (crash restart): epochs maps every installed epoch to its
// shard count, and epoch is the last installed one. The node resumes at
// that epoch with no transition in flight — a crash mid-transition is
// safe because with the node-shared store the handoff import is a local
// no-op and gated (queued) deliveries were never acknowledged; the
// groups' fence prefixes are treated as complete at the restored epoch.
func NewCoordinatorAt(cfg Config, epochs map[uint32]int32, epoch uint32) *Coordinator {
	shards := int(epochs[epoch])
	if shards < 1 {
		shards = 1
	}
	es := make(map[uint32]int32, len(epochs))
	for e, n := range epochs {
		es[e] = n
	}
	es[epoch] = int32(shards)
	co := &Coordinator{
		cfg:         cfg.withDefaults(),
		epoch:       epoch,
		epochShards: es,
		groupEpoch:  make(map[int]uint32),
		queuedKeys:  make(map[groupKey]int),
		inners:      make(map[int]protocol.Applier),
		shards:      shards,
		retireTo:    -1,
	}
	for g := 0; g < shards; g++ {
		co.groupEpoch[g] = epoch
	}
	return co
}

// bind wires the coordinator to the engine stack; resubmit re-proposes
// skipped commands through the full routing path (Engine.Submit).
func (co *Coordinator) bind(x *xshard.Engine, resubmit func(command.Command, protocol.DoneFunc)) {
	co.mu.Lock()
	co.inner = x.Inner()
	co.table = x.Table()
	co.resubmit = resubmit
	epoch, shards := co.epoch, co.shards
	co.mu.Unlock()
	co.inner.SetRouter(shard.NewRouterAt(epoch, shards))
	co.table.SetRouterAt(co.RouterAt)
}

// RouterAt rebuilds the router of a past (or the current) epoch; unknown
// epochs fall back to the current router.
func (co *Coordinator) RouterAt(epoch uint32) shard.Router {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.routerForLocked(epoch)
}

// Epoch returns the current routing epoch.
func (co *Coordinator) Epoch() uint32 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.epoch
}

// Shards returns the current epoch's shard count.
func (co *Coordinator) Shards() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.shards
}

// Resizing reports whether a transition is in flight locally.
func (co *Coordinator) Resizing() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.pending != nil
}

// QueuedCommands returns the number of gated deliveries, for tests and
// introspection.
func (co *Coordinator) QueuedCommands() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.queue)
}

// DebugState renders the in-flight transition's progress — per-source
// fence/import/drain state, the pre-epoch queue check, and a queue
// breakdown — for tests and stall diagnostics; empty when idle.
func (co *Coordinator) DebugState() []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	var out []string
	t := co.pending
	if t == nil {
		return out
	}
	out = append(out, fmt.Sprintf("transition epoch=%d %d→%d shards, started=%s",
		t.marker.Epoch, t.marker.PrevShards, t.marker.Shards, t.startedAt.Format("15:04:05.000")))
	for g := 0; g < int(t.marker.PrevShards); g++ {
		h := t.sources[g]
		if h == nil {
			out = append(out, fmt.Sprintf("group %d: fenced=%v (not a source)", g, t.fenced[g]))
			continue
		}
		out = append(out, fmt.Sprintf("group %d: fenced=%v imported=%v drained=%v preEpochQueued=%v",
			g, t.fenced[g], h.imported, h.drained, co.queueHoldsPreEpochLocked(g, t.marker.Epoch)))
	}
	counts := make(map[string]int)
	for _, q := range co.queue {
		counts[fmt.Sprintf("group=%d op=%v epoch=%d releasing=%v", q.group, q.cmd.Op, q.cmd.Epoch, q.releasing)]++
	}
	for k, n := range counts {
		out = append(out, fmt.Sprintf("queued %dx %s", n, k))
	}
	sort.Strings(out)
	return out
}

// start launches the maintenance sweeper.
func (co *Coordinator) start() {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.running {
		return
	}
	co.running = true
	co.stopCh = make(chan struct{})
	co.doneCh = make(chan struct{})
	go co.sweeper(co.stopCh, co.doneCh)
}

// stop halts the sweeper and fails every gated delivery with ErrStopped.
func (co *Coordinator) stop() {
	co.mu.Lock()
	if !co.running {
		co.mu.Unlock()
		return
	}
	co.running = false
	stopCh, doneCh := co.stopCh, co.doneCh
	queue := co.queue
	co.queue = nil
	co.queuedKeys = make(map[groupKey]int)
	ws := co.waiters
	co.waiters = nil
	co.mu.Unlock()
	close(stopCh)
	<-doneCh
	for _, q := range queue {
		// Entries mid-release report through the drainer; failing them
		// here would fire their completion twice.
		if q.done != nil && !q.releasing {
			q.done(protocol.Result{Err: protocol.ErrStopped})
		}
	}
	for _, w := range ws {
		close(w.ch)
	}
}

// sweeper drives timers: overdue fence re-proposals and scheduled
// retirements.
func (co *Coordinator) sweeper(stopCh, doneCh chan struct{}) {
	defer close(doneCh)
	// Real-time cadence by design: fence/retire deadlines inside Sweep
	// read cfg.Now; deterministic tests call Sweep directly.
	//caesarlint:allow wallclock -- sweep cadence only; deadlines compare cfg.Now instants
	tick := time.NewTicker(co.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-stopCh:
			return
		case <-tick.C:
			co.Sweep()
		}
	}
}

// Sweep runs one maintenance pass: it re-proposes fences for groups that
// have not delivered theirs within FenceTimeout (staggered by node rank so
// one survivor usually wins) and executes a due retirement. Tests with an
// injected clock call it directly.
func (co *Coordinator) Sweep() {
	now := co.cfg.Now()
	var refence []int
	var marker Marker
	co.mu.Lock()
	if t := co.pending; t != nil {
		stagger := time.Duration(int32(co.cfg.Self)) * co.cfg.FenceTimeout / 4
		if now.Sub(t.startedAt) > co.cfg.FenceTimeout+stagger {
			for g := 0; g < int(t.marker.PrevShards); g++ {
				if !t.fenced[g] {
					refence = append(refence, g)
				}
			}
			marker = t.marker
			t.startedAt = now // back off before the next round
		}
	}
	inner := co.inner
	doRetire := co.retireTo >= 0 && now.After(co.retireAt) && co.pending == nil
	retireTo := co.retireTo
	if doRetire {
		co.retireTo = -1
	}
	co.mu.Unlock()

	if len(refence) > 0 && inner != nil {
		if cmd, err := FenceCommand(marker); err == nil {
			for _, g := range refence {
				inner.SubmitTo(g, cmd, nil)
			}
		}
	}
	if doRetire && inner != nil {
		inner.RetireFrom(retireTo)
	}
}

// Applier wraps one group's applier chain with the epoch gate. It must be
// the outermost layer (above the cross-shard interception), so fences and
// epoch checks see every delivery first.
func (co *Coordinator) Applier(group int, inner protocol.Applier) protocol.Applier {
	co.mu.Lock()
	co.inners[group] = inner
	co.mu.Unlock()
	return &gateApplier{co: co, group: group, inner: inner}
}

// gateApplier is the per-group delivery gate.
type gateApplier struct {
	co    *Coordinator
	group int
	inner protocol.Applier
}

var (
	_ protocol.TimestampedApplier = (*gateApplier)(nil)
	_ protocol.DeferringApplier   = (*gateApplier)(nil)
)

// Apply implements protocol.Applier.
func (a *gateApplier) Apply(cmd command.Command) []byte {
	return a.ApplyAt(cmd, timestamp.Zero)
}

// ApplyAt implements protocol.TimestampedApplier for engines that do not
// support deferral: a gated command blocks until released. The CAESAR
// engine uses ApplyDeferred instead, which never blocks delivery.
func (a *gateApplier) ApplyAt(cmd command.Command, ts timestamp.Timestamp) []byte {
	ch := make(chan protocol.Result, 1)
	a.ApplyDeferred(cmd, ts, func(res protocol.Result) { ch <- res })
	res := <-ch
	return res.Value
}

// ApplyDeferred implements protocol.DeferringApplier: the gate decides
// whether the delivery applies now, parks until a handoff completes, or is
// skipped as stale. done fires exactly once, synchronously on the pass and
// stale paths.
func (a *gateApplier) ApplyDeferred(cmd command.Command, ts timestamp.Timestamp, done func(protocol.Result)) {
	a.co.gate(a.group, a.inner, cmd, ts, done)
}

// applyInner runs one released or passing command on the group's inner
// chain.
func applyInner(inner protocol.Applier, cmd command.Command, ts timestamp.Timestamp) []byte {
	if ta, ok := inner.(protocol.TimestampedApplier); ok {
		return ta.ApplyAt(cmd, ts)
	}
	return inner.Apply(cmd)
}

// gate classifies one delivery and carries out the verdict.
func (co *Coordinator) gate(group int, inner protocol.Applier, cmd command.Command, ts timestamp.Timestamp, done func(protocol.Result)) {
	if cmd.Op == command.OpFence {
		co.cfg.Trace.Record(co.cfg.Self, trace.KindFence, cmd.ID, ts)
		if m, err := DecodeMarker(cmd.Payload); err == nil {
			co.onFence(group, m)
		}
		// Pass the fence down the chain after interpreting it: the
		// durable log (below the cross-shard table) must record its
		// delivery — a restarted replica's delivered set has to contain
		// fence IDs, or re-sent decisions listing a fence as predecessor
		// would park forever — and the store ignores fences.
		applyInner(inner, cmd, ts)
		done(protocol.Result{})
		return
	}
	co.mu.Lock()
	verdict := co.classifyLocked(group, cmd)
	switch verdict {
	case gateQueue:
		co.queue = append(co.queue, &queuedCmd{
			group:      group,
			groupEpoch: co.groupEpoch[group],
			cmd:        cmd,
			ts:         ts,
			done:       done,
		})
		if cmd.Op != command.OpXCommit {
			// Pieces never join the per-key FIFO relation (see
			// classifyLocked); only state-machine commands claim keys.
			for _, k := range cmd.Keys() {
				co.queuedKeys[groupKey{group: group, key: k}]++
			}
		}
		co.mu.Unlock()
		return
	case gatePass:
		co.mu.Unlock()
		done(protocol.Result{Value: applyInner(inner, cmd, ts)})
		return
	default:
		co.mu.Unlock()
		co.finishSkipped(verdict, group, cmd, done)
	}
}

// finishSkipped handles the stale and lost-marker verdicts outside the
// lock.
func (co *Coordinator) finishSkipped(v gateVerdict, group int, cmd command.Command, done func(protocol.Result)) {
	if v == gateDropMarker {
		done(protocol.Result{})
		return
	}
	// gateStale: every replica skips at the same point of the group's
	// order (the verdict depends only on the delivered fence prefix).
	if cmd.Op == command.OpXCommit {
		// A stale participant piece kills its transaction everywhere,
		// deterministically; the coordinating node's client callback gets
		// ErrEpochRetry and the engine re-proposes under the new epoch.
		if p, err := xshard.DecodePiece(cmd.Payload); err == nil {
			co.table.KillStale(int32(group), p.XID)
		}
		done(protocol.Result{})
		return
	}
	co.mu.Lock()
	resubmit := co.resubmit
	mine := cmd.ID.Node == co.cfg.Self
	co.mu.Unlock()
	if mine && resubmit != nil {
		// Re-route this node's own command under the current epoch; the
		// client callback fires when the re-proposal executes.
		cmd.ID = command.ID{}
		resubmit(cmd, func(res protocol.Result) { done(res) })
		return
	}
	done(protocol.Result{})
}

// classifyLocked is the gate's decision procedure. Everything it reads —
// the group's fence prefix, the command's epoch stamp, the key homes per
// epoch — is identical on every replica at this point of the group's
// delivery order, except the handoff-progress and queue checks, which only
// delay a command without reordering it against its key's other traffic.
func (co *Coordinator) classifyLocked(group int, cmd command.Command) gateVerdict {
	switch cmd.Op {
	case command.OpXAbort:
		// A marker races its piece through the queue too: if the piece
		// was delivered first but parked, the marker lost.
		if ab, err := xshard.DecodeAbort(cmd.Payload); err == nil {
			for _, q := range co.queue {
				if q.group == group && q.cmd.Op == command.OpXCommit {
					if p, err := xshard.DecodePiece(q.cmd.Payload); err == nil && p.XID == ab.XID {
						return gateDropMarker
					}
				}
			}
		}
		return gatePass
	case command.OpNoop:
		return gatePass
	}
	isPiece := cmd.Op == command.OpXCommit
	if !isPiece && co.touchesQueuedLocked(group, cmd) {
		// Keep the group's per-key delivery order: traffic behind a
		// queued state-machine command on the same key queues behind it.
		// Pieces are exempt on both sides of the relation — they neither
		// wait behind queued commands nor hold keys others wait on:
		// piece registration order against same-key commands is already
		// the commit table's documented relaxation window, and keeping
		// pieces out of the FIFO relation is what keeps the queue's
		// wait-graph acyclic (a pre-fence transaction's pieces must
		// register for the handoff drain to finish, and a piece-owned
		// key would let epoch-N handoffs wait on entries that wait on
		// epoch-N handoffs of other groups).
		return gateQueue
	}
	if cmd.Epoch < co.groupEpoch[group] {
		// Routed under an outdated epoch and ordered after this group's
		// fence: stale if any key has moved away, ordinary otherwise. The
		// verdict is computed against the group's own fence prefix
		// (groupEpoch), never this node's global epoch — the prefix is
		// identical on every replica at this delivery position, while the
		// global epoch advances with other groups' fences at
		// replica-dependent times.
		if co.keysMovedLocked(group, cmd, co.groupEpoch[group]) {
			return gateStale
		}
		return gatePass
	}
	if cmd.Epoch > co.epoch {
		// Routed under an epoch this replica has not installed yet (its
		// first fence is still in flight); park until it is.
		return gateQueue
	}
	if t := co.pending; t != nil && cmd.Epoch == t.marker.Epoch && !isPiece && co.awaitsHandoffLocked(t, cmd) {
		// Pieces are exempt from the handoff gate for the same reason
		// they are exempt from the per-key FIFO: registering a piece
		// touches only the commit table, never the store, and holding it
		// would close the wait-graph cycle this gate must stay out of —
		// a source group's drain waits on held transactions, a held
		// transaction waits on its queued piece, the queued piece waits
		// on the handoff, and the handoff waits on the drain. (Seen live:
		// an old-epoch transaction, complete but execution-deferred
		// behind new-epoch transactions whose merged bounds start low in
		// a fresh group's clock, wedged both hot groups' drains forever.)
		// The transaction's *execution* still orders correctly: the
		// table runs it at the merged timestamp against the node-shared
		// store, which a resize never moves.
		return gateQueue
	}
	return gatePass
}

// touchesQueuedLocked reports whether any key of cmd has queued traffic
// of the same group.
func (co *Coordinator) touchesQueuedLocked(group int, cmd command.Command) bool {
	if len(co.queuedKeys) == 0 {
		return false
	}
	for _, k := range cmd.Keys() {
		if co.queuedKeys[groupKey{group: group, key: k}] > 0 {
			return true
		}
	}
	return false
}

// routerForLocked rebuilds the router of one recorded epoch (falling back
// to the current one for an unknown epoch, which cannot happen for any
// epoch a groupEpoch entry holds).
func (co *Coordinator) routerForLocked(epoch uint32) shard.Router {
	if n, ok := co.epochShards[epoch]; ok {
		return shard.NewRouterAt(epoch, int(n))
	}
	return shard.NewRouterAt(co.epoch, co.shards)
}

// keysMovedLocked reports whether any key of cmd is homed outside group
// under the given epoch's routing.
func (co *Coordinator) keysMovedLocked(group int, cmd command.Command, epoch uint32) bool {
	router := co.routerForLocked(epoch)
	for _, k := range cmd.Keys() {
		if router.Shard(k) != group {
			return true
		}
	}
	return false
}

// awaitsHandoffLocked reports whether cmd touches a key whose source
// group's handoff is still incomplete.
func (co *Coordinator) awaitsHandoffLocked(t *transition, cmd command.Command) bool {
	for _, k := range cmd.Keys() {
		src := t.prev.Shard(k)
		if src == t.next.Shard(k) {
			continue
		}
		if !co.handoffDoneLocked(t, src) {
			return true
		}
	}
	return false
}

// handoffDoneLocked reports whether one source group's handoff has fully
// completed: its fence delivered, the moving keys exported and imported,
// the transactions it ordered pre-fence settled, and — for back-to-back
// resizes — every command of an earlier epoch this replica still holds
// queued for the group applied. The last clause keeps a twice-migrating
// key's history in order: the new epoch's destinations may not proceed
// while a previous transition still owes the source an application.
func (co *Coordinator) handoffDoneLocked(t *transition, src int) bool {
	h := t.sources[src]
	if h == nil || !h.done() || !t.fenced[src] {
		return false
	}
	return !co.queueHoldsPreEpochLocked(src, t.marker.Epoch)
}

// queueHoldsPreEpochLocked reports whether the queue holds a command for
// the group routed under an epoch older than the given one.
func (co *Coordinator) queueHoldsPreEpochLocked(group int, epoch uint32) bool {
	for _, q := range co.queue {
		if q.group == group && q.cmd.Epoch < epoch {
			return true
		}
	}
	return false
}

// onFence processes one resize marker delivered by a group — the point
// where this replica's epoch state advances.
func (co *Coordinator) onFence(group int, m Marker) {
	co.mu.Lock()
	if m.Epoch > co.epoch && co.pending != nil && m != co.pending.marker {
		// A fence beyond the transition in progress: replay when it
		// completes (fences of one group always arrive in epoch order,
		// but the first sighting of a future epoch can outrun an older
		// transition still handing off).
		co.deferred = append(co.deferred, fenceEvent{group: group, marker: m})
		co.mu.Unlock()
		return
	}
	if co.pending == nil {
		if m.Epoch != co.epoch+1 || int(m.PrevShards) != co.shards {
			// A duplicate of an installed epoch's fence, or a competing
			// marker that lost its epoch to an earlier delivery.
			co.mu.Unlock()
			return
		}
		if !co.installLocked(m) {
			co.mu.Unlock()
			return
		}
	}
	t := co.pending
	if t == nil || t.marker != m || t.fenced[group] {
		co.mu.Unlock()
		return
	}
	t.fenced[group] = true
	if co.groupEpoch[group] < m.Epoch {
		co.groupEpoch[group] = m.Epoch
	}
	h := t.sources[group]
	prev, next := t.prev, t.next
	exportFn, importFn := co.cfg.Export, co.cfg.Import
	table := co.table
	co.mu.Unlock()

	if h != nil {
		// Source group: snapshot the moving keys at this exact point of
		// the group's history and hand them to their destinations, then
		// wait for the transactions this group ordered pre-fence to
		// settle.
		if exportFn != nil {
			snap := exportFn(func(k string) bool {
				return prev.Shard(k) == group && next.Shard(k) != group
			})
			if importFn != nil && len(snap) > 0 {
				importFn(snap)
			}
		}
		co.mu.Lock()
		if co.pending == t {
			h.imported = true
		}
		co.mu.Unlock()
		if table != nil {
			table.AwaitGroupDrain(int32(group), func() {
				co.mu.Lock()
				if co.pending == t {
					h.drained = true
				}
				co.mu.Unlock()
				co.advance()
			})
		}
	}
	co.advance()
}

// installLocked switches this replica to a new epoch: record it, create
// the groups it needs (buffered traffic drains into them), switch the
// proposer-side router, and start tracking the transition. A scheduled
// retirement still pending from the previous shrink is executed first —
// outside the lock (stopping a group joins its delivery goroutine, which
// may be waiting on this mutex) — so a growth resize revives fresh group
// instances instead of adopting half-retired ones. Returns false when a
// concurrent delivery won the install during that unlocked window.
func (co *Coordinator) installLocked(m Marker) bool {
	if co.retireTo >= 0 {
		retireTo := co.retireTo
		co.retireTo = -1
		inner := co.inner
		co.mu.Unlock()
		if inner != nil {
			inner.RetireFrom(retireTo)
		}
		co.mu.Lock()
		if co.pending != nil {
			// A concurrent delivery installed during the unlocked
			// window. The same marker: our caller proceeds against the
			// installed transition — dropping this group's fence event
			// would shift this replica's epoch cut for the group to a
			// later re-proposed fence and diverge from its peers. A
			// different marker: ours lost, drop it.
			return co.pending.marker == m
		}
		if m.Epoch != co.epoch+1 {
			return false
		}
	}
	t := &transition{
		marker:    m,
		prev:      shard.NewRouterAt(m.Epoch-1, int(m.PrevShards)),
		next:      shard.NewRouterAt(m.Epoch, int(m.Shards)),
		fenced:    make(map[int]bool),
		sources:   make(map[int]*handoff),
		startedAt: co.cfg.Now(),
	}
	if m.Shards > m.PrevShards {
		// Growth moves keys out of every old group into the new ones.
		for g := 0; g < int(m.PrevShards); g++ {
			t.sources[g] = &handoff{}
		}
	} else {
		// A shrink moves only the retired groups' keys.
		for g := int(m.Shards); g < int(m.PrevShards); g++ {
			t.sources[g] = &handoff{}
		}
	}
	co.pending = t
	co.epoch = m.Epoch
	co.shards = int(m.Shards)
	co.epochShards[m.Epoch] = m.Shards
	for g := int(m.PrevShards); g < int(m.Shards); g++ {
		co.groupEpoch[g] = m.Epoch
	}
	if co.cfg.Journal != nil {
		// Durable before any delivery can observe the new epoch (they
		// classify under co.mu, which we hold until the install's own
		// unlocked window below).
		co.cfg.Journal(m)
	}
	if co.cfg.OnInstall != nil {
		co.cfg.OnInstall(m)
	}
	co.cfg.Flight.Eventf(flight.KindEpoch,
		"epoch %d installed: %d -> %d group(s)", m.Epoch, m.PrevShards, m.Shards)
	inner := co.inner
	if inner != nil {
		co.mu.Unlock()
		if m.Shards > m.PrevShards {
			_ = inner.EnsureGroups(int(m.Shards), int32(m.Epoch))
		}
		inner.SetRouter(t.next)
		co.mu.Lock()
	}
	return true
}

// advance drains releasable queued commands and completes the transition
// when every fence has landed and every source handoff is done. A queue
// release can itself complete a handoff (the back-to-back clause of
// handoffDoneLocked) and a completion can release further queue entries,
// so the pass loops to a fixpoint.
func (co *Coordinator) advance() {
	for {
		progress := co.drainQueue()
		var release []waiter
		var replay []fenceEvent
		co.mu.Lock()
		if t := co.pending; t != nil && co.transitionDoneLocked(t) {
			co.pending = nil
			if int(t.marker.Shards) < int(t.marker.PrevShards) {
				co.retireTo = int(t.marker.Shards)
				co.retireAt = co.cfg.Now().Add(co.cfg.RetireDelay)
			}
			kept := co.waiters[:0]
			for _, w := range co.waiters {
				if w.epoch <= co.epoch {
					release = append(release, w)
				} else {
					kept = append(kept, w)
				}
			}
			co.waiters = kept
			replay = co.deferred
			co.deferred = nil
		}
		co.mu.Unlock()
		for _, w := range release {
			close(w.ch)
		}
		for _, ev := range replay {
			co.onFence(ev.group, ev.marker) // re-enters advance; drains nest safely
		}
		if !progress && len(release) == 0 && len(replay) == 0 {
			return
		}
	}
}

// transitionDoneLocked reports whether every old group fenced and every
// source handed off.
func (co *Coordinator) transitionDoneLocked(t *transition) bool {
	for g := 0; g < int(t.marker.PrevShards); g++ {
		if !t.fenced[g] {
			return false
		}
	}
	for src := range t.sources {
		if !co.handoffDoneLocked(t, src) {
			return false
		}
	}
	return true
}

// drainQueue scans the queue and applies every entry that is no longer
// gated and has no earlier same-group entry sharing a key with it (the
// per-group per-key delivery order), reporting whether anything was
// released. A release can ungate later — or, through a completed handoff,
// earlier — entries, so the scan loops to a fixpoint. Only one goroutine
// drains at a time, so releases of ordered pairs keep their arrival
// order. Head-of-line blocking across unrelated groups and keys does not
// exist: an entry waits only on its own gates and its own key
// predecessors, which is also what keeps the wait-graph acyclic across
// back-to-back resizes.
func (co *Coordinator) drainQueue() bool {
	progress := false
	co.mu.Lock()
	if co.draining {
		// The active drainer picks this request up after its pass — a
		// bail without the flag would lose e.g. a handoff-completion
		// wakeup that arrived mid-scan, leaving released commands parked
		// forever.
		co.drainAgain = true
		co.mu.Unlock()
		return false
	}
	co.draining = true
	for {
		changed := co.drainAgain
		co.drainAgain = false
		for i := 0; i < len(co.queue); i++ {
			q := co.queue[i]
			if q.releasing || co.stillGatedLocked(q) || co.orderedBehindLocked(i) {
				continue
			}
			// Keep the entry in place (keys claimed, later same-key
			// traffic held back) while the apply runs outside the lock.
			q.releasing = true
			verdict := co.classifyReleasedLocked(q)
			inner := co.inners[q.group]
			co.mu.Unlock()
			progress, changed = true, true
			switch verdict {
			case gateStale, gateDropMarker:
				co.finishSkipped(verdict, q.group, q.cmd, q.done)
			default:
				res := protocol.Result{}
				if inner != nil {
					res.Value = applyInner(inner, q.cmd, q.ts)
				}
				q.done(res)
			}
			co.mu.Lock()
			for j, e := range co.queue {
				if e == q {
					co.queue = append(co.queue[:j], co.queue[j+1:]...)
					break
				}
			}
			if q.cmd.Op != command.OpXCommit {
				for _, k := range q.cmd.Keys() {
					gk := groupKey{group: q.group, key: k}
					if co.queuedKeys[gk]--; co.queuedKeys[gk] <= 0 {
						delete(co.queuedKeys, gk)
					}
				}
			}
			// Indexes shifted under us while unlocked; keep scanning
			// forward — anything skipped is caught by the outer fixpoint
			// pass (restarting here would make a big drain quadratic).
			i--
		}
		if !changed {
			break
		}
	}
	co.draining = false
	co.mu.Unlock()
	return progress
}

// orderedBehindLocked reports whether queue entry i must wait for an
// earlier entry: both are state-machine commands of the same group
// sharing a key, so their group's delivery order binds them. Pieces take
// part on neither side (see classifyLocked).
func (co *Coordinator) orderedBehindLocked(i int) bool {
	q := co.queue[i]
	if q.cmd.Op == command.OpXCommit {
		return false
	}
	for j := 0; j < i; j++ {
		p := co.queue[j]
		if p.group != q.group || p.cmd.Op == command.OpXCommit {
			continue
		}
		for _, k := range q.cmd.Keys() {
			for _, pk := range p.cmd.Keys() {
				if k == pk {
					return true
				}
			}
		}
	}
	return false
}

// stillGatedLocked reports whether a queued entry must keep waiting: its
// epoch is not installed yet, or — for state-machine commands — a handoff
// it depends on is incomplete (pieces wait only for their epoch's
// install; see classifyLocked).
func (co *Coordinator) stillGatedLocked(q *queuedCmd) bool {
	if q.cmd.Epoch > co.epoch {
		return true
	}
	if q.cmd.Op == command.OpXCommit {
		return false
	}
	if t := co.pending; t != nil && q.cmd.Epoch == t.marker.Epoch && co.awaitsHandoffLocked(t, q.cmd) {
		return true
	}
	return false
}

// classifyReleasedLocked re-judges a released command against the fence
// prefix recorded at its delivery position (q.groupEpoch), NOT the epoch
// this replica has reached by release time: the delivery position is
// identical on every replica, the release moment is not, and judging by
// the latter would let one replica skip what another applied.
func (co *Coordinator) classifyReleasedLocked(q *queuedCmd) gateVerdict {
	if q.cmd.Epoch < q.groupEpoch && co.keysMovedLocked(q.group, q.cmd, q.groupEpoch) {
		return gateStale
	}
	return gatePass
}

// WaitEpoch parks until the transition installing epoch has completed
// locally (fences delivered, handoffs done); it returns immediately when
// the epoch is already current and idle. The returned channel closes on
// completion or coordinator stop.
func (co *Coordinator) WaitEpoch(epoch uint32) <-chan struct{} {
	ch := make(chan struct{})
	co.mu.Lock()
	if (co.epoch >= epoch && co.pending == nil) || !co.runningLocked() {
		co.mu.Unlock()
		close(ch)
		return ch
	}
	co.waiters = append(co.waiters, waiter{epoch: epoch, ch: ch})
	co.mu.Unlock()
	return ch
}

func (co *Coordinator) runningLocked() bool { return co.running }
