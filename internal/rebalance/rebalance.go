// Package rebalance changes a live sharded deployment's consensus-group
// count (G → G') with no lost or reordered commands — the "shard
// rebalancing" the Router's Jump Consistent Hash was chosen for: resizing
// moves only the keys whose home actually changes (~1/(G+1) of the
// keyspace per added group).
//
// # Mechanism
//
// Routing is epoch-versioned: every epoch names one shard count
// (shard.NewRouterAt), every submission is stamped with the epoch it was
// routed under, and a resize installs the next epoch. The switch is fenced
// by consensus: a resize marker — an OpFence command, which conflicts with
// every command of its group — is ordered through each existing group, so
// all replicas pass from the old epoch to the new one at the exact same
// point of each group's delivery order. This reuses the trick the paper's
// recovery machinery is built on: a consensus-ordered marker makes a state
// transition deterministic across replicas.
//
// A resize runs in four steps:
//
//  1. Decide. The initiator proposes the marker to group 0. Group 0's
//     total order of fences serializes concurrent resizes — the first
//     marker of an epoch wins, later ones for the same epoch are no-ops.
//  2. Fence. The marker is propagated to every other existing group (by
//     the initiator; any replica re-proposes missing fences on timeout,
//     so a crashed initiator cannot wedge the transition — duplicate
//     fences for an installed epoch are no-ops). Delivering the first
//     fence of the new epoch installs it on that replica: new groups are
//     created (the Mux buffers their early traffic), the proposer-side
//     router switches, and the gate below starts classifying.
//  3. Hand off. When a source group (one that loses keys) delivers its
//     fence, every replica snapshots the moving keys (kvstore export) at
//     the exact same point of the group's history, imports them for the
//     destination groups, and waits for the cross-shard transactions the
//     group ordered before the fence to settle (Table.AwaitGroupDrain).
//     Commands that reached a key's new home before the handoff finished
//     are queued — per-key FIFO, without blocking the group's delivery of
//     unrelated traffic — and applied the moment it does.
//  4. Retire. After the transition completes, groups beyond the new count
//     stop and detach (after a grace window for stragglers); their mux
//     slots drop stale-generation traffic and can be revived by a later
//     growth.
//
// Commands routed under the old epoch but ordered after their group's
// fence are skipped deterministically on every replica (the fence/command
// order is fixed by consensus) and re-proposed by their submitting node
// under the new epoch, so nothing is lost and nothing applies twice. A
// cross-shard transaction is epoch-consistent by construction — all of its
// pieces are partitioned and stamped under one router snapshot — and if
// any piece lands after its group's fence the whole transaction is killed
// everywhere (xshard.ErrEpochRetry) and re-proposed under the new routing.
//
// # Guarantees
//
// Preserved through a resize: exactly-once application of every
// acknowledged command on every replica; the per-key total order (the old
// home's order up to its fence, then the new home's order — the same cut
// on every replica); cross-shard atomicity (a transaction straddling the
// marker either commits under one epoch everywhere or aborts everywhere
// and is retried). Not preserved: read-your-stale-read corner cases that
// already exist in the cross-shard window (see internal/xshard) remain;
// a command already accepted into a retiring group's consensus but not
// decided when the grace window closes fails with protocol.ErrStopped
// (outcome reported, never silently dropped — a submission that merely
// raced the shrink and found the group gone, shard.ErrNoGroup, is
// re-routed automatically by Engine.Submit); and latency on migrating
// keys stalls for up to one handoff round while their queue drains.
package rebalance

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/caesar-consensus/caesar/internal/command"
)

// Marker is the payload of a resize fence: it installs Epoch, whose router
// has Shards groups, replacing the PrevShards-group routing of Epoch-1.
type Marker struct {
	Epoch      uint32
	Shards     int32
	PrevShards int32
}

// String implements fmt.Stringer.
func (m Marker) String() string {
	return fmt.Sprintf("resize{epoch %d: %d→%d shards}", m.Epoch, m.PrevShards, m.Shards)
}

// EncodeMarker serializes a marker for a fence payload.
func EncodeMarker(m Marker) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMarker reverses EncodeMarker.
func DecodeMarker(payload []byte) (Marker, error) {
	var m Marker
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m)
	return m, err
}

// FenceCommand builds the consensus command carrying a resize marker: an
// OpFence, totally ordered against every command of the group it is
// proposed to.
func FenceCommand(m Marker) (command.Command, error) {
	payload, err := EncodeMarker(m)
	if err != nil {
		return command.Command{}, err
	}
	return command.Fence(payload), nil
}
