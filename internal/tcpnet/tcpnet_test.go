package tcpnet_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/caesar-consensus/caesar/internal/caesar"
	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/kvstore"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/tcpnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
)

// freeAddrs reserves n distinct localhost ports.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func TestEnvelopeRoundTrip(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var trs []*tcpnet.Transport
	recv := make(chan string, 16)
	for i := 0; i < 2; i++ {
		tr, err := tcpnet.Listen(tcpnet.Config{Self: timestamp.NodeID(i), Addrs: addrs})
		if err != nil {
			t.Fatal(err)
		}
		self := i
		tr.SetHandler(func(from timestamp.NodeID, payload any) {
			m, ok := payload.(*caesar.Heartbeat)
			if ok && m != nil {
				recv <- fmt.Sprintf("%d<-%d", self, from)
			}
		})
		trs = append(trs, tr)
		defer tr.Close()
	}
	trs[0].Send(1, &caesar.Heartbeat{})
	trs[1].Send(0, &caesar.Heartbeat{})
	trs[0].Send(0, &caesar.Heartbeat{}) // self loopback
	want := map[string]bool{"1<-0": true, "0<-1": true, "0<-0": true}
	for i := 0; i < 3; i++ {
		select {
		case got := <-recv:
			if !want[got] {
				t.Fatalf("unexpected delivery %s", got)
			}
			delete(want, got)
		case <-time.After(5 * time.Second):
			t.Fatalf("missing deliveries: %v", want)
		}
	}
}

// TestCaesarOverTCP runs a full three-node CAESAR cluster over localhost
// sockets: the complete multi-process code path minus process boundaries.
func TestCaesarOverTCP(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var reps []*caesar.Replica
	var stores []*kvstore.Store
	for i := 0; i < 3; i++ {
		tr, err := tcpnet.Listen(tcpnet.Config{Self: timestamp.NodeID(i), Addrs: addrs})
		if err != nil {
			t.Fatal(err)
		}
		store := kvstore.New()
		rep := caesar.New(tr, store, caesar.Config{HeartbeatInterval: -1})
		rep.Start()
		reps = append(reps, rep)
		stores = append(stores, store)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	for i := 0; i < 9; i++ {
		ch := make(chan protocol.Result, 1)
		reps[i%3].Submit(command.Put("k", []byte{byte(i)}), func(res protocol.Result) { ch <- res })
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("put %d: %v", i, res.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("put %d timed out", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, s := range stores {
			if v, _ := s.Get("k"); len(v) != 1 || v[0] != 8 {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("replicas did not converge over TCP")
}
