// Package tcpnet is the real-sockets transport for multi-process
// deployments: every node listens on its configured address, lazily dials
// its peers, and exchanges gob-encoded envelopes (internal/wire) over
// persistent TCP connections with automatic reconnection.
package tcpnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/transport"
	"github.com/caesar-consensus/caesar/internal/wire"
)

// Config describes the cluster's addresses.
type Config struct {
	// Self is this node's ID; Addrs[Self] is the listen address.
	Self timestamp.NodeID
	// Addrs maps node IDs (0..N-1 by index) to host:port addresses.
	Addrs []string
	// DialRetry is the backoff between reconnect attempts. Default
	// 500ms.
	DialRetry time.Duration
	// QueueSize bounds each peer's outbound queue. Default 4096.
	QueueSize int
}

// Transport implements transport.Endpoint over TCP.
type Transport struct {
	cfg      Config
	listener net.Listener
	counters []peerCounters // one per peer, indexed by NodeID

	mu      sync.Mutex
	handler transport.Handler
	sends   []chan any // per-peer outbound queues
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup

	// inboundOpen counts currently accepted inbound connections; with
	// the per-peer outbound connected flags it feeds the node's
	// open-connections gauge.
	inboundOpen atomic.Int64
}

// PeerStats is a point-in-time snapshot of one peer link's traffic.
// Self-sends short-circuit the sockets and count as messages with zero
// bytes.
type PeerStats struct {
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
}

type peerCounters struct {
	sentMsgs, sentBytes atomic.Int64
	recvMsgs, recvBytes atomic.Int64
	// connected reports the outbound link to this peer as currently
	// dialed; the open-connections gauge samples it.
	connected atomic.Bool
}

// PeerStats returns one peer link's traffic counters; out-of-range peers
// read zero.
func (t *Transport) PeerStats(peer timestamp.NodeID) PeerStats {
	if int(peer) < 0 || int(peer) >= len(t.counters) {
		return PeerStats{}
	}
	c := &t.counters[peer]
	return PeerStats{
		SentMsgs:  c.sentMsgs.Load(),
		SentBytes: c.sentBytes.Load(),
		RecvMsgs:  c.recvMsgs.Load(),
		RecvBytes: c.recvBytes.Load(),
	}
}

// OpenConns returns the number of currently open transport connections:
// accepted inbound links plus dialed outbound peer links. The process
// connection gauge samples it at scrape time.
func (t *Transport) OpenConns() int64 {
	n := t.inboundOpen.Load()
	for i := range t.counters {
		if timestamp.NodeID(i) == t.cfg.Self {
			continue
		}
		if t.counters[i].connected.Load() {
			n++
		}
	}
	return n
}

// PeerConnected reports whether the outbound link to peer is currently
// dialed; out-of-range peers read false.
func (t *Transport) PeerConnected(peer timestamp.NodeID) bool {
	if int(peer) < 0 || int(peer) >= len(t.counters) {
		return false
	}
	return t.counters[peer].connected.Load()
}

// Stats returns per-peer traffic counters, indexed by node ID.
func (t *Transport) Stats() []PeerStats {
	out := make([]PeerStats, len(t.counters))
	for i := range t.counters {
		c := &t.counters[i]
		out[i] = PeerStats{
			SentMsgs:  c.sentMsgs.Load(),
			SentBytes: c.sentBytes.Load(),
			RecvMsgs:  c.recvMsgs.Load(),
			RecvBytes: c.recvBytes.Load(),
		}
	}
	return out
}

// countingWriter feeds the bytes written through it into a shared
// counter; gob framing means this sees exactly the wire bytes of the
// envelopes encoded onto it.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// countingReader tallies bytes locally; the read loop attributes them to
// a peer once each decoded envelope reveals its sender.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

var _ transport.Endpoint = (*Transport)(nil)

// Listen starts the transport: it binds the listen socket immediately and
// connects to peers in the background.
func Listen(cfg Config) (*Transport, error) {
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 500 * time.Millisecond
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 4096
	}
	if int(cfg.Self) >= len(cfg.Addrs) {
		return nil, fmt.Errorf("tcpnet: self id %d outside address list", cfg.Self)
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Self])
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", cfg.Addrs[cfg.Self], err)
	}
	t := &Transport{
		cfg:      cfg,
		listener: ln,
		counters: make([]peerCounters, len(cfg.Addrs)),
		sends:    make([]chan any, len(cfg.Addrs)),
		done:     make(chan struct{}),
	}
	for i := range t.sends {
		t.sends[i] = make(chan any, cfg.QueueSize)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	for i := range cfg.Addrs {
		peer := timestamp.NodeID(i)
		t.wg.Add(1)
		go t.sendLoop(peer)
	}
	return t, nil
}

// Self implements transport.Endpoint.
func (t *Transport) Self() timestamp.NodeID { return t.cfg.Self }

// Peers implements transport.Endpoint.
func (t *Transport) Peers() []timestamp.NodeID {
	peers := make([]timestamp.NodeID, len(t.cfg.Addrs))
	for i := range peers {
		peers[i] = timestamp.NodeID(i)
	}
	return peers
}

// SetHandler implements transport.Endpoint.
func (t *Transport) SetHandler(h transport.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *Transport) getHandler() transport.Handler {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handler
}

// Send implements transport.Endpoint. Messages to unreachable peers are
// buffered until the queue fills, then block (backpressure); messages are
// dropped when the transport closes.
func (t *Transport) Send(to timestamp.NodeID, payload any) {
	if int(to) >= len(t.sends) {
		return
	}
	select {
	case t.sends[to] <- payload:
	case <-t.done:
	}
}

// Broadcast implements transport.Endpoint.
func (t *Transport) Broadcast(payload any) {
	for i := range t.sends {
		t.Send(timestamp.NodeID(i), payload)
	}
}

// Close implements transport.Endpoint.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

// acceptLoop serves inbound connections.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes envelopes from one inbound connection.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.inboundOpen.Add(1)
	defer t.inboundOpen.Add(-1)
	go func() {
		<-t.done
		conn.Close()
	}()
	cr := &countingReader{r: conn}
	dec := wire.NewDecoder(cr)
	var seen int64
	for {
		var env wire.Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if i := int(env.From); i >= 0 && i < len(t.counters) {
			t.counters[i].recvMsgs.Add(1)
			t.counters[i].recvBytes.Add(cr.n - seen)
		}
		seen = cr.n
		if h := t.getHandler(); h != nil {
			h(env.From, env.Payload)
		}
	}
}

// sendLoop owns the outbound connection to one peer: dial (with retries),
// drain the queue, reconnect on error. Self-sends short-circuit to the
// handler to keep local message order tight.
func (t *Transport) sendLoop(peer timestamp.NodeID) {
	defer t.wg.Done()
	ctr := &t.counters[peer]
	if peer == t.cfg.Self {
		for {
			select {
			case <-t.done:
				return
			case payload := <-t.sends[peer]:
				ctr.sentMsgs.Add(1)
				ctr.recvMsgs.Add(1)
				if h := t.getHandler(); h != nil {
					h(t.cfg.Self, payload)
				}
			}
		}
	}
	var enc *wire.Encoder
	var conn net.Conn
	dial := func() bool {
		for {
			var err error
			conn, err = net.DialTimeout("tcp", t.cfg.Addrs[peer], 2*time.Second)
			if err == nil {
				enc = wire.NewEncoder(&countingWriter{w: conn, n: &ctr.sentBytes})
				ctr.connected.Store(true)
				return true
			}
			select {
			case <-t.done:
				return false
			case <-time.After(t.cfg.DialRetry):
			}
		}
	}
	defer func() {
		ctr.connected.Store(false)
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-t.done:
			return
		case payload := <-t.sends[peer]:
			for {
				if enc == nil && !dial() {
					return
				}
				err := enc.Encode(&wire.Envelope{From: t.cfg.Self, Payload: payload})
				if err == nil {
					ctr.sentMsgs.Add(1)
					break
				}
				// Reconnect and retry this message once per new
				// connection.
				conn.Close()
				conn, enc = nil, nil
				ctr.connected.Store(false)
				select {
				case <-t.done:
					return
				case <-time.After(t.cfg.DialRetry):
				}
			}
		}
	}
}
