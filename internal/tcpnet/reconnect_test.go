package tcpnet_test

import (
	"net"
	"testing"
	"time"

	"github.com/caesar-consensus/caesar/internal/caesar"
	"github.com/caesar-consensus/caesar/internal/tcpnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
)

// TestDialRetryUntilPeerUp starts a sender before its peer is listening:
// the queued message must be delivered once the peer comes up.
func TestDialRetryUntilPeerUp(t *testing.T) {
	addrs := freeAddrs(t, 2)
	tr0, err := tcpnet.Listen(tcpnet.Config{
		Self: 0, Addrs: addrs, DialRetry: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr0.Close()
	tr0.SetHandler(func(timestamp.NodeID, any) {})

	// Queue a message to the not-yet-listening peer.
	tr0.Send(1, &caesar.Heartbeat{})
	time.Sleep(50 * time.Millisecond)

	recv := make(chan struct{}, 1)
	tr1, err := tcpnet.Listen(tcpnet.Config{Self: 1, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer tr1.Close()
	tr1.SetHandler(func(from timestamp.NodeID, payload any) {
		if _, ok := payload.(*caesar.Heartbeat); ok && from == 0 {
			recv <- struct{}{}
		}
	})
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("queued message never delivered after peer came up")
	}
}

// TestSendAfterPeerRestart breaks the connection mid-stream and checks the
// transport reconnects and keeps delivering.
func TestSendAfterPeerRestart(t *testing.T) {
	addrs := freeAddrs(t, 2)
	tr0, err := tcpnet.Listen(tcpnet.Config{
		Self: 0, Addrs: addrs, DialRetry: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr0.Close()
	tr0.SetHandler(func(timestamp.NodeID, any) {})

	recv := make(chan struct{}, 16)
	handler := func(from timestamp.NodeID, payload any) {
		if _, ok := payload.(*caesar.Heartbeat); ok {
			recv <- struct{}{}
		}
	}
	tr1, err := tcpnet.Listen(tcpnet.Config{Self: 1, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	tr1.SetHandler(handler)
	tr0.Send(1, &caesar.Heartbeat{})
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("initial delivery failed")
	}

	// Restart the peer on the same address.
	if err := tr1.Close(); err != nil {
		t.Fatal(err)
	}
	var tr1b *tcpnet.Transport
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr1b, err = tcpnet.Listen(tcpnet.Config{Self: 1, Addrs: addrs})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer tr1b.Close()
	tr1b.SetHandler(handler)

	// Sends must eventually get through over a fresh connection.
	delivered := false
	for i := 0; i < 100 && !delivered; i++ {
		tr0.Send(1, &caesar.Heartbeat{})
		select {
		case <-recv:
			delivered = true
		case <-time.After(100 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no delivery after peer restart")
	}
}

// freeAddrsHelper alias for readability within this file.
var _ = net.JoinHostPort
