package caesar

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/caesar-consensus/caesar/internal/audit"
	"github.com/caesar-consensus/caesar/internal/memnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
)

// Cluster is an in-process CAESAR deployment: N nodes wired through a
// simulated network. It is the fastest way to embed a replicated store in
// tests, examples and single-binary applications; multi-process
// deployments use cmd/caesar-server instead.
type Cluster struct {
	net   *memnet.Network
	cfg   clusterConfig
	nodes []*Node

	// nodeMu guards the nodes slice against the audit collector's
	// background reads racing Restart's node swap; the other accessors
	// keep their historical unguarded semantics (callers already
	// serialize Crash/Restart against their own use).
	nodeMu sync.RWMutex
	// auditMu guards the lazily built cross-replica audit collector.
	auditMu   sync.Mutex
	collector *audit.Collector
}

// ClusterOption customises NewLocalCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	delay         memnet.DelayFunc
	jitter        time.Duration
	opts          Options
	shards        int
	dataDir       string
	auditInterval time.Duration
}

// WithGeoLatency injects the paper's five-site EC2 round-trip times
// (Virginia, Ohio, Frankfurt, Ireland, Mumbai) scaled by scale: 1.0 is
// real WAN latency, 0.1 runs ten times faster with identical ratios.
func WithGeoLatency(scale float64) ClusterOption {
	return func(c *clusterConfig) { c.delay = memnet.GeoDelay(scale) }
}

// WithUniformLatency gives every link the same one-way delay.
func WithUniformLatency(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.delay = memnet.UniformDelay(d) }
}

// WithJitter adds uniform random jitter in [0, d) to every message.
func WithJitter(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.jitter = d }
}

// WithNodeOptions applies node-level options to every node.
func WithNodeOptions(opts Options) ClusterOption {
	return func(c *clusterConfig) { c.opts = opts }
}

// WithShards runs g independent consensus groups on every node and routes
// each command to a group by consistent hashing of its key (ShardOf).
// Commands on different shards are ordered and executed fully in parallel;
// commands on the same key always share a shard, so conflicting commands
// keep one cluster-wide order. Multi-key transactions (ProposeTx) whose
// keys span groups commit atomically through the cross-shard layer at the
// merged (max) of the groups' stable timestamps; cross-shard transactions
// are atomic but not strictly serializable against each other. The group
// count is elastic: Node.Resize changes it live, with consensus-fenced
// state handoff (internal/rebalance). g < 1 is treated as 1 (an unsharded
// deployment).
func WithShards(g int) ClusterOption {
	return func(c *clusterConfig) { c.shards = g }
}

// WithDataDir makes every node durable: node i logs to dir/node<i>
// (internal/wal) and can be rebuilt from it after a crash with Restart.
func WithDataDir(dir string) ClusterOption {
	return func(c *clusterConfig) { c.dataDir = dir }
}

// WithTrace shares one trace buffer across every node of the cluster:
// each node records its protocol milestones (tagged with its node ID)
// into t, so t.CommandHistory shows a command's full cross-replica story
// — proposal on the leader, waits and acks on the acceptors, fsyncs and
// deliveries everywhere.
func WithTrace(t *Trace) ClusterOption {
	return func(c *clusterConfig) { c.opts.Trace = t }
}

// nodeOpts resolves node i's options (its data subdirectory, when the
// cluster is durable).
func (cfg clusterConfig) nodeOpts(i int) Options {
	opts := cfg.opts
	if cfg.dataDir != "" {
		opts.DataDir = filepath.Join(cfg.dataDir, fmt.Sprintf("node%d", i))
	}
	return opts
}

// NewLocalCluster builds and starts an n-node cluster. n must be at least
// three (the protocol needs a meaningful quorum).
func NewLocalCluster(n int, options ...ClusterOption) (*Cluster, error) {
	if n < 3 {
		return nil, fmt.Errorf("caesar: cluster needs at least 3 nodes, got %d", n)
	}
	var cfg clusterConfig
	for _, opt := range options {
		opt(&cfg)
	}
	net := memnet.New(memnet.Config{Nodes: n, Delay: cfg.delay, Jitter: cfg.jitter})
	c := &Cluster{net: net, cfg: cfg}
	for i := 0; i < n; i++ {
		node, err := newNode(net.Endpoint(timestamp.NodeID(i)), cfg.nodeOpts(i), cfg.shards)
		if err != nil {
			for _, built := range c.nodes {
				built.Close()
			}
			net.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	if cfg.auditInterval > 0 {
		c.auditor().Start()
	}
	return c, nil
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Crash disconnects and stops a node, simulating a failure. The survivors
// detect it and recover its in-flight commands. On a durable cluster the
// node's data dir is left behind for Restart.
func (c *Cluster) Crash(i int) {
	c.net.Crash(timestamp.NodeID(i))
	c.nodes[i].Close()
}

// Restart rebuilds a crashed node from its data directory and rejoins it
// to the cluster: the new incarnation replays its snapshot + write-ahead
// log tail, resumes the routing epoch it crashed at, and relearns the
// decisions it missed while down from the leaders' Stable retransmission
// — every command it acknowledged before the crash is applied exactly
// once, never twice. Requires a cluster built WithDataDir; the node must
// have been crashed (or closed) first.
func (c *Cluster) Restart(i int) error {
	if c.cfg.dataDir == "" {
		return fmt.Errorf("caesar: Restart needs a durable cluster (build it with WithDataDir)")
	}
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("caesar: no node %d", i)
	}
	if !c.nodes[i].closed.Load() {
		return fmt.Errorf("caesar: node %d is still running (Crash it first)", i)
	}
	c.net.Restore(timestamp.NodeID(i))
	node, err := newNode(c.net.Endpoint(timestamp.NodeID(i)), c.cfg.nodeOpts(i), c.cfg.shards)
	if err != nil {
		return err
	}
	c.nodeMu.Lock()
	c.nodes[i] = node
	c.nodeMu.Unlock()
	return nil
}

// Close stops the background auditor (if any), every node and the
// network.
func (c *Cluster) Close() {
	c.auditMu.Lock()
	col := c.collector
	c.auditMu.Unlock()
	if col != nil {
		col.Stop()
	}
	for _, n := range c.nodes {
		n.Close()
	}
	c.net.Close()
}
