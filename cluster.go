package caesar

import (
	"fmt"
	"time"

	"github.com/caesar-consensus/caesar/internal/memnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
)

// Cluster is an in-process CAESAR deployment: N nodes wired through a
// simulated network. It is the fastest way to embed a replicated store in
// tests, examples and single-binary applications; multi-process
// deployments use cmd/caesar-server instead.
type Cluster struct {
	net   *memnet.Network
	nodes []*Node
}

// ClusterOption customises NewLocalCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	delay  memnet.DelayFunc
	jitter time.Duration
	opts   Options
	shards int
}

// WithGeoLatency injects the paper's five-site EC2 round-trip times
// (Virginia, Ohio, Frankfurt, Ireland, Mumbai) scaled by scale: 1.0 is
// real WAN latency, 0.1 runs ten times faster with identical ratios.
func WithGeoLatency(scale float64) ClusterOption {
	return func(c *clusterConfig) { c.delay = memnet.GeoDelay(scale) }
}

// WithUniformLatency gives every link the same one-way delay.
func WithUniformLatency(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.delay = memnet.UniformDelay(d) }
}

// WithJitter adds uniform random jitter in [0, d) to every message.
func WithJitter(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.jitter = d }
}

// WithNodeOptions applies node-level options to every node.
func WithNodeOptions(opts Options) ClusterOption {
	return func(c *clusterConfig) { c.opts = opts }
}

// WithShards runs g independent consensus groups on every node and routes
// each command to a group by consistent hashing of its key (ShardOf).
// Commands on different shards are ordered and executed fully in parallel;
// commands on the same key always share a shard, so conflicting commands
// keep one cluster-wide order. Multi-key transactions (ProposeTx) whose
// keys span groups commit atomically through the cross-shard layer at the
// merged (max) of the groups' stable timestamps; cross-shard transactions
// are atomic but not strictly serializable against each other. The group
// count is elastic: Node.Resize changes it live, with consensus-fenced
// state handoff (internal/rebalance). g < 1 is treated as 1 (an unsharded
// deployment).
func WithShards(g int) ClusterOption {
	return func(c *clusterConfig) { c.shards = g }
}

// NewLocalCluster builds and starts an n-node cluster. n must be at least
// three (the protocol needs a meaningful quorum).
func NewLocalCluster(n int, options ...ClusterOption) (*Cluster, error) {
	if n < 3 {
		return nil, fmt.Errorf("caesar: cluster needs at least 3 nodes, got %d", n)
	}
	var cfg clusterConfig
	for _, opt := range options {
		opt(&cfg)
	}
	net := memnet.New(memnet.Config{Nodes: n, Delay: cfg.delay, Jitter: cfg.jitter})
	c := &Cluster{net: net}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, newNode(net.Endpoint(timestamp.NodeID(i)), cfg.opts, cfg.shards))
	}
	return c, nil
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Crash disconnects and stops a node, simulating a failure. The survivors
// detect it and recover its in-flight commands.
func (c *Cluster) Crash(i int) {
	c.net.Crash(timestamp.NodeID(i))
	c.nodes[i].Close()
}

// Close stops every node and the network.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
	c.net.Close()
}
