package caesar

import "github.com/caesar-consensus/caesar/internal/flight"

// Diagnosis is one assembled stall-diagnosis bundle: the tripped stall
// probes (none for an on-demand bundle of a healthy node) plus every
// diagnostic section a node carries — the wedged commands' traced
// histories, the commit table's pending detail, the rebalance
// coordinator's transition state, the flight-recorder tail and, on
// trips, a goroutine profile. Bundles come from Node.Diagnose, from
// Options.OnStall and from the server's /debugz endpoint and DIAGNOSE
// admin command.
type Diagnosis struct {
	inner *flight.Diagnosis
}

// Stalled reports whether the bundle contains at least one stall (a
// probe above its threshold at assembly time).
func (d Diagnosis) Stalled() bool {
	return d.inner != nil && len(d.inner.Stalls) > 0
}

// Stalls renders the tripped probes, likeliest root cause (oldest)
// first; empty for a healthy bundle.
func (d Diagnosis) Stalls() []string {
	if d.inner == nil {
		return nil
	}
	out := make([]string, len(d.inner.Stalls))
	for i, s := range d.inner.Stalls {
		out[i] = s.String()
	}
	return out
}

// String renders the whole bundle for operators.
func (d Diagnosis) String() string { return d.inner.Render() }

// Diagnose assembles an on-demand diagnosis bundle right now, regardless
// of thresholds. Without Options.StallThreshold the node has no watchdog
// and the bundle degrades to the flight-recorder tail alone.
func (n *Node) Diagnose() Diagnosis {
	if wd := n.stk.Watchdog; wd != nil {
		return Diagnosis{inner: wd.Diagnose()}
	}
	d := &flight.Diagnosis{Node: n.id}
	if tail := n.stk.Flight.Tail(64); len(tail) > 0 {
		d.Sections = append(d.Sections, flight.RenderedSection{
			Name: "flight recorder",
			Body: flight.Format(tail),
		})
	}
	return Diagnosis{inner: d}
}

// LastStall returns the most recent watchdog trip's bundle — kept after
// the stall clears, for post-mortems — and whether one exists.
func (n *Node) LastStall() (Diagnosis, bool) {
	d := n.stk.Watchdog.Last()
	return Diagnosis{inner: d}, d != nil
}

// FlightLog renders the newest max events of the node's flight recorder
// (the always-on journal of node-level events: recovery, suspects,
// retransmits, resizes, WAL snapshots, watchdog trips), oldest-first,
// one per line.
func (n *Node) FlightLog(max int) string {
	return flight.Format(n.stk.Flight.Tail(max))
}
