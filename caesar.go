package caesar

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/caesar-consensus/caesar/internal/audit"
	"github.com/caesar-consensus/caesar/internal/batch"
	"github.com/caesar-consensus/caesar/internal/caesar"
	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/contend"
	"github.com/caesar-consensus/caesar/internal/flight"
	"github.com/caesar-consensus/caesar/internal/kvstore"
	"github.com/caesar-consensus/caesar/internal/metrics"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/reads"
	"github.com/caesar-consensus/caesar/internal/rebalance"
	"github.com/caesar-consensus/caesar/internal/shard"
	"github.com/caesar-consensus/caesar/internal/stack"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/transport"
	"github.com/caesar-consensus/caesar/internal/wal"
	"github.com/caesar-consensus/caesar/internal/xshard"
)

// Command is a state-machine command. Two commands conflict when they
// access the same key and at least one writes it; CAESAR totally orders
// conflicting commands and leaves commuting ones unordered.
type Command struct {
	// Kind selects the operation.
	Kind Op
	// Key is the accessed key.
	Key string
	// Value is the written payload (puts only).
	Value []byte
}

// Op enumerates command kinds.
type Op uint8

// Supported operations.
const (
	// OpPut writes Value under Key.
	OpPut Op = iota + 1
	// OpGet reads Key.
	OpGet
	// OpAdd atomically adds Delta to Key's integer value and returns
	// the new value (big-endian int64).
	OpAdd
)

// Put builds a write command.
func Put(key string, value []byte) Command {
	return Command{Kind: OpPut, Key: key, Value: value}
}

// Get builds a read command.
func Get(key string) Command {
	return Command{Kind: OpGet, Key: key}
}

// Add builds an atomic-increment command; the returned value of Propose is
// the post-increment big-endian int64.
func Add(key string, delta int64) Command {
	return Command{Kind: OpAdd, Key: key, Value: encodeInt(delta)}
}

// DecodeInt converts a value returned by Get/Add on an integer key.
func DecodeInt(b []byte) int64 {
	if len(b) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func encodeInt(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// Stats is a snapshot of a node's protocol counters.
type Stats struct {
	// Executed is the number of commands applied locally.
	Executed int64
	// FastDecisions and SlowDecisions split the decisions this node
	// took as command leader by path (two vs four communication
	// delays).
	FastDecisions int64
	SlowDecisions int64
	// MeanLatency is the mean proposer-observed latency.
	MeanLatency time.Duration
}

// ErrClosed is returned for proposals on a closed node.
var ErrClosed = errors.New("caesar: node closed")

// ErrTxAborted is returned for cross-shard transactions killed by the
// commit layer (e.g. the coordinating node failed before every consensus
// group received its participant piece). An aborted transaction is applied
// nowhere.
var ErrTxAborted = xshard.ErrAborted

// ErrNotSharded is returned by Resize on a node built without WithShards:
// an unsharded deployment has no router to re-epoch.
var ErrNotSharded = errors.New("caesar: node is not sharded (build the cluster with WithShards)")

// ErrResizeInProgress is returned by Resize while another resize is still
// completing.
var ErrResizeInProgress = rebalance.ErrResizeInProgress

// ErrResizeConflict is returned when a concurrently initiated resize won
// the epoch: the deployment was resized, but to the winner's shard count.
var ErrResizeConflict = rebalance.ErrResizeConflict

// Node is one CAESAR replica with an embedded key-value store. With
// WithShards it runs several independent consensus groups and routes each
// command to its key's group; Resize changes the group count live.
type Node struct {
	id      timestamp.NodeID
	stk     *stack.Stack
	engine  protocol.Engine
	resizer *rebalance.Engine // nil on unsharded nodes
	store   *kvstore.Store
	reads   *reads.Engine
	met     *metrics.Recorder
	shards  int
	closed  atomic.Bool
}

// Options tunes a node; the zero value is production defaults.
type Options struct {
	// FastQuorumTimeout is how long a leader waits for a fast quorum
	// before falling back to the slow proposal phase. Default 400ms.
	FastQuorumTimeout time.Duration
	// HeartbeatInterval drives the failure detector; negative disables
	// failure handling (testing only). Default 100ms.
	HeartbeatInterval time.Duration
	// SuspectTimeout is the silence threshold before a peer is
	// suspected and its commands recovered. Default 1s.
	SuspectTimeout time.Duration
	// DisableGC retains all command metadata (debugging only).
	DisableGC bool
	// DataDir enables the durable write-ahead log (internal/wal): every
	// acknowledged command is fsynced (group commit — many decisions,
	// one sync) before its client learns the result, and a node rebuilt
	// from the same directory replays snapshot + log tail, rejoins the
	// cluster and continues with exactly-once application intact. Empty
	// keeps the node purely in memory.
	DataDir string
	// RetransmitAfter is how long a command leader waits for a missing
	// delivery acknowledgement before re-sending the decision — the
	// catch-up path a restarted replica relearns missed commands
	// through. Default 1s; negative disables.
	RetransmitAfter time.Duration
	// Trace, when non-nil, records every protocol milestone of this node
	// — from proposal through fsync to client acknowledgement — into the
	// given ring buffer. Cheap enough to leave on in production.
	Trace *Trace
	// SlowCommandThreshold, when > 0, logs the full traced history of any
	// command proposed through this node whose submit-to-ack latency
	// exceeds it (the slow-command log). Most useful together with Trace.
	SlowCommandThreshold time.Duration
	// FlightBuffer caps the node's always-on flight recorder — the bounded
	// journal of node-level events (recovery, suspects, retransmits,
	// resizes, snapshots, watchdog trips) behind Node.FlightLog and the
	// watchdog's bundles. <= 0 selects the default (1024 events).
	FlightBuffer int
	// StallThreshold arms the node's stall watchdog: when positive, a
	// background scanner samples the oldest held cross-shard transaction,
	// the oldest parked read fence and the oldest unacknowledged command
	// against this threshold, and on a trip assembles a diagnosis bundle
	// (Node.Diagnose, OnStall, the server's /debugz). Zero disables the
	// watchdog; Diagnose then reports only the flight log.
	StallThreshold time.Duration
	// WatchdogInterval paces the watchdog's scans. Default 1s.
	WatchdogInterval time.Duration
	// OnStall fires once per healthy→stalled transition with the
	// watchdog's diagnosis. It runs on the scanning goroutine and must
	// not block; hand the bundle off if handling is slow.
	OnStall func(Diagnosis)
	// OnDivergence fires when a cross-replica audit (Cluster.Audit, a
	// background auditor enabled with WithAuditInterval, or an external
	// caesar-audit feeding a server's collector) proves this node is
	// involved in an applied-state divergence. The bundle names the
	// group, epoch, frontier and both digests. It runs on the auditing
	// goroutine and must not block. The flight-journal event and the
	// caesar_audit_divergence_total counter fire regardless.
	OnDivergence func(Divergence)
}

func (o Options) toConfig() caesar.Config {
	cfg := caesar.Config{
		FastTimeout:       o.FastQuorumTimeout,
		HeartbeatInterval: o.HeartbeatInterval,
		SuspectTimeout:    o.SuspectTimeout,
		RetransmitAfter:   o.RetransmitAfter,
		Trace:             o.Trace.inner(),
		SlowThreshold:     o.SlowCommandThreshold,
	}
	if o.DisableGC {
		cfg.GCInterval = -1
	}
	return cfg
}

// newNode wires a replica — or, with shards > 1, a sharded set of replicas
// multiplexed over the endpoint, under the cross-shard commit and live
// rebalancing layers, and with a data dir under the durable write-ahead
// log — to the transport; used by Cluster and the server binaries. The
// actual layering lives in internal/stack (shared with cmd/caesar-server
// and the harness); every shard shares the node's store, recorder, commit
// table, rebalance coordinator and log, so Stats and Read report
// whole-node aggregates regardless of the shard count, multi-key
// transactions spanning groups commit atomically instead of failing, and
// Resize changes the group count live. With a data dir, a node built from
// a previous incarnation's directory recovers its state before joining.
func newNode(ep transport.Endpoint, opts Options, shards int) (*Node, error) {
	met := metrics.NewRecorder()
	cfg := opts.toConfig()
	cfg.Metrics = met
	rec := flight.New(ep.Self(), opts.FlightBuffer)
	cfg.Flight = rec
	scfg := stack.Config{
		Shards:           shards,
		Metrics:          met,
		Trace:            opts.Trace.inner(),
		DataDir:          opts.DataDir,
		Rebalance:        true,
		Flight:           rec,
		StallThreshold:   opts.StallThreshold,
		WatchdogInterval: opts.WatchdogInterval,
		Build: func(g int, sep transport.Endpoint, app protocol.Applier, seed wal.GroupSeed, gmet *metrics.Recorder, ctd *contend.Group) protocol.Engine {
			gcfg := cfg
			if gmet != nil {
				gcfg.Metrics = gmet
			}
			gcfg.Contend = ctd
			gcfg.FlightGroup = int32(g)
			gcfg.Predelivered = seed.Delivered
			gcfg.SeqFloor = seed.SeqFloor
			gcfg.ClockSeed = seed.ClockSeed
			gcfg.ReserveSeq = seed.ReserveSeq
			gcfg.ReserveClock = seed.ReserveClock
			return caesar.New(sep, app, gcfg)
		},
	}
	if opts.OnStall != nil {
		onStall := opts.OnStall
		scfg.OnStall = func(d *flight.Diagnosis) { onStall(Diagnosis{inner: d}) }
	}
	if opts.OnDivergence != nil {
		onDiv := opts.OnDivergence
		scfg.OnDivergence = func(d audit.Divergence) { onDiv(fromDivergence(d)) }
	}
	stk, err := stack.Build(ep, scfg)
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:      ep.Self(),
		stk:     stk,
		engine:  stk.Engine,
		resizer: stk.Resizer,
		store:   stk.Store,
		reads:   stk.Reads,
		met:     met,
		shards:  stk.Shards,
	}
	stk.Start()
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() int { return int(n.id) }

// toInner converts a public command to its consensus representation.
func toInner(cmd Command) (command.Command, error) {
	switch cmd.Kind {
	case OpPut:
		return command.Put(cmd.Key, cmd.Value), nil
	case OpGet:
		return command.Get(cmd.Key), nil
	case OpAdd:
		return command.Command{Op: command.OpAdd, Key: cmd.Key, Value: cmd.Value}, nil
	default:
		return command.Command{}, fmt.Errorf("caesar: unknown command kind %d", cmd.Kind)
	}
}

// submitWait proposes one consensus command and waits for local execution.
func (n *Node) submitWait(ctx context.Context, inner command.Command) ([]byte, error) {
	ch := make(chan protocol.Result, 1)
	n.engine.Submit(inner, func(res protocol.Result) { ch <- res })
	select {
	case res := <-ch:
		return res.Value, res.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Propose submits a command to the replicated state machine through this
// node and waits for its execution here. It returns the command's result
// (the read value for gets, nil for puts).
func (n *Node) Propose(ctx context.Context, cmd Command) ([]byte, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	inner, err := toInner(cmd)
	if err != nil {
		return nil, err
	}
	return n.submitWait(ctx, inner)
}

// ProposeTx submits several commands as one atomic transaction and waits
// for its execution on this node: all of them are applied as one
// indivisible unit on every replica, or none are (ErrTxAborted). On an
// unsharded node — or when every key routes to one consensus group — the
// transaction is an ordinary batch command; when its keys span groups it
// commits through the cross-shard layer, executing at the merged (max) of
// the groups' stable timestamps. Cross-shard transactions are atomic but
// not strictly serializable against each other; see the package
// documentation.
//
// Error semantics: nil means applied everywhere, ErrTxAborted means
// applied nowhere. Any other error (context cancellation, a node shutting
// down mid-submit) leaves the outcome UNKNOWN — the transaction may still
// commit after the error is returned, so callers must not blindly retry a
// non-idempotent transaction on such errors.
func (n *Node) ProposeTx(ctx context.Context, cmds []Command) error {
	if n.closed.Load() {
		return ErrClosed
	}
	if len(cmds) == 0 {
		return nil
	}
	inners := make([]command.Command, len(cmds))
	for i, cmd := range cmds {
		inner, err := toInner(cmd)
		if err != nil {
			return err
		}
		inners[i] = inner
	}
	if len(inners) == 1 {
		_, err := n.submitWait(ctx, inners[0])
		return err
	}
	packed, err := batch.Pack(inners)
	if err != nil {
		return err
	}
	_, err = n.submitWait(ctx, packed)
	return err
}

// Read serves a linearizable read of key from this node, off the
// consensus path (internal/reads): the read is stamped with the key's
// consensus-group logical clock and answered from the local store the
// moment every conflicting command below the stamp has been applied here
// — no proposal, no quorum round-trip, no log record. A client that
// writes and reads through one node always reads its own writes, and
// successive reads of a key through one node never go backwards; see the
// package documentation's read model for the precise guarantee. Reads
// racing a live Resize retry internally under a consistent epoch. The
// returned value is nil for an absent key (like Propose of a Get).
func (n *Node) Read(ctx context.Context, key string) ([]byte, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if n.reads != nil && n.reads.Available() {
		val, _, err := n.reads.Read(ctx, key)
		if err == nil || !errors.Is(err, reads.ErrUnavailable) {
			return val, err
		}
	}
	return n.Propose(ctx, Get(key))
}

// ReadTx serves a snapshot read of several keys — possibly spanning
// consensus groups — at one merged read timestamp, without proposing or
// writing transaction pieces: a consistent cut of the store in which an
// atomic transaction's writes (ProposeTx) appear for all of its keys or
// for none. Values align with keys; absent keys read nil. Like Read, the
// snapshot is served locally after the groups' delivery frontiers pass
// the read point and every held cross-shard transaction on the keys has
// settled.
func (n *Node) ReadTx(ctx context.Context, keys []string) ([][]byte, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if len(keys) == 0 {
		return nil, nil
	}
	if n.reads != nil && n.reads.Available() {
		vals, _, err := n.reads.ReadTx(ctx, keys)
		if err == nil || !errors.Is(err, reads.ErrUnavailable) {
			return vals, err
		}
	}
	// No local read support (not reachable for CAESAR-built nodes): fall
	// back to proposing each read — correct per key, not a snapshot.
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		v, err := n.Propose(ctx, Get(k))
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	return Stats{
		Executed:      n.met.Executed.Load(),
		FastDecisions: n.met.FastDecisions.Load(),
		SlowDecisions: n.met.SlowDecisions.Load(),
		MeanLatency:   n.met.Latency.Mean(),
	}
}

// Shards returns the number of consensus groups this node currently runs
// (1 unless the cluster was built with WithShards; live resizes move it).
func (n *Node) Shards() int {
	if n.resizer != nil {
		return n.resizer.Shards()
	}
	return n.shards
}

// Resize changes this deployment's consensus-group count to shards, live:
// no command is lost or reordered, keys whose home group changes are
// handed off under a consensus-ordered resize marker, and every node
// switches routing at the same point of each group's delivery order. Only
// ~1/(G+1) of the keyspace moves per added group (jump consistent
// hashing); traffic on migrating keys stalls for at most one handoff
// round, everything else flows uninterrupted.
//
// Resize returns once the transition completes on this node; peers
// complete on their own as the markers deliver (survivors finish the
// propagation if this node crashes mid-resize). It returns
// ErrResizeInProgress when a transition is already running,
// ErrResizeConflict when a concurrently initiated resize won (the
// deployment resized, but to the winner's count), and ErrNotSharded on a
// node built without WithShards.
func (n *Node) Resize(ctx context.Context, shards int) error {
	if n.closed.Load() {
		return ErrClosed
	}
	if n.resizer == nil {
		return ErrNotSharded
	}
	return n.resizer.Resize(ctx, shards)
}

// Close stops the replica: engines first (quiescing deliveries), then —
// on a durable node — the write-ahead log, whose acknowledged tail is
// already fsynced. In-flight proposals fail. Safe for concurrent use with
// Propose/ProposeTx (a proposal racing Close fails with ErrClosed or the
// engine's stop error).
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.stk.Stop()
}

// ShardOf returns the consensus group a key is routed to in a deployment
// with the given shard count. Clients can use it to place related keys on
// one shard; it is stable under growth (raising shards from G to G+1 moves
// only ~1/(G+1) of the keyspace).
func ShardOf(key string, shards int) int {
	return shard.NewRouter(shards).Shard(key)
}
