// Command caesar-top is a live terminal console for a running cluster:
// one row per replica, refreshed in place, built from each node's
// /statusz JSON (served on the metrics listener). It shows the numbers an
// operator watches during an incident — throughput (differenced between
// scrapes), client-latency p50/p99, the fast-decision ratio (the
// protocol's health signal: CAESAR's whole point is deciding on the fast
// path), commit-table occupancy, the stall watchdog's state, the state
// auditor's verdict — and the latency histogram's exemplar: the concrete
// command ID behind the worst latency bucket, ready to paste into
// caesar-trace when the tail spikes.
//
// Below the replica table a hot-keys panel merges every node's /workloadz
// contention profile: the cluster's hottest keys ranked by attributed
// events, with the nack/wait/park/retry decomposition and total wait time
// each key cost. A fast-ratio drop then comes with the keys responsible.
// -hotkeys caps the panel (0 hides it).
//
// Usage:
//
//	caesar-top -nodes http://127.0.0.1:9180,http://127.0.0.1:9181,http://127.0.0.1:9182
//
// -once renders a single frame without clearing the screen (for scripts
// and smoke tests); -frames n stops after n refreshes. Unreachable nodes
// render as a "down" row; the console keeps going.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

// statusSeries / statusFamily mirror the /statusz document shape
// (internal/obs). Decoded locally so the binary stays a pure HTTP client.
type statusSeries struct {
	Labels          string  `json:"labels"`
	Value           float64 `json:"value"`
	Sum             float64 `json:"sum"`
	Count           int64   `json:"count"`
	P50             float64 `json:"p50"`
	P99             float64 `json:"p99"`
	Max             float64 `json:"max"`
	Exemplar        string  `json:"exemplar"`
	ExemplarSeconds float64 `json:"exemplar_seconds"`
}

type statusFamily struct {
	Name   string         `json:"name"`
	Series []statusSeries `json:"series"`
}

// sample is one node's scrape, reduced to the console's columns.
type sample struct {
	when        time.Time
	executed    float64
	p50, p99    float64
	fast, slow  float64
	xshardHeld  float64
	shards      float64
	epoch       float64
	stalled     bool
	trips       float64
	divergences float64
	auditWrites float64
	exemplar    string
	exemplarSec float64
	hot         []workloadKey
	err         error
}

// workloadKey mirrors one /workloadz row (internal/contend.KeyStats).
type workloadKey struct {
	Key         string  `json:"key"`
	Group       int     `json:"group"`
	Events      int64   `json:"events"`
	Touches     int64   `json:"touches"`
	Nacks       int64   `json:"nacks"`
	Waits       int64   `json:"waits"`
	Parks       int64   `json:"parks"`
	Retries     int64   `json:"retries"`
	Recoveries  int64   `json:"recoveries"`
	Holds       int64   `json:"holds"`
	WaitSeconds float64 `json:"wait_seconds"`
}

// workloadDoc mirrors the /workloadz document shape.
type workloadDoc struct {
	TopKeys []workloadKey `json:"top_keys"`
}

// scrapeWorkload fetches one node's contention profile; a miss (older
// node, endpoint disabled) just leaves the panel without that node's
// contribution.
func scrapeWorkload(ctx context.Context, client *http.Client, base string, top int) []workloadKey {
	url := fmt.Sprintf("%s/workloadz?top=%d", strings.TrimRight(base, "/"), top)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var doc workloadDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil
	}
	return doc.TopKeys
}

// nodeSeries returns the family's node-level series (empty label set);
// sharded nodes also export per-group labeled series, which the console
// ignores in favour of the aggregate.
func nodeSeries(fams []statusFamily, name string) (statusSeries, bool) {
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			if s.Labels == "" {
				return s, true
			}
		}
	}
	return statusSeries{}, false
}

func scrape(ctx context.Context, client *http.Client, base string) sample {
	smp := sample{when: time.Now()}
	url := strings.TrimRight(base, "/") + "/statusz"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		smp.err = err
		return smp
	}
	resp, err := client.Do(req)
	if err != nil {
		smp.err = err
		return smp
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		smp.err = err
		return smp
	}
	if resp.StatusCode != http.StatusOK {
		smp.err = fmt.Errorf("HTTP %d", resp.StatusCode)
		return smp
	}
	var fams []statusFamily
	if err := json.Unmarshal(body, &fams); err != nil {
		smp.err = fmt.Errorf("bad JSON: %v", err)
		return smp
	}
	if s, ok := nodeSeries(fams, "caesar_executed_total"); ok {
		smp.executed = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_latency_seconds"); ok {
		smp.p50, smp.p99 = s.P50, s.P99
		smp.exemplar, smp.exemplarSec = s.Exemplar, s.ExemplarSeconds
	}
	if s, ok := nodeSeries(fams, "caesar_fast_decisions_total"); ok {
		smp.fast = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_slow_decisions_total"); ok {
		smp.slow = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_xshard_held"); ok {
		smp.xshardHeld = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_shards"); ok {
		smp.shards = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_routing_epoch"); ok {
		smp.epoch = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_watchdog_stalled"); ok {
		smp.stalled = s.Value > 0
	}
	if s, ok := nodeSeries(fams, "caesar_watchdog_trips_total"); ok {
		smp.trips = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_audit_divergence_total"); ok {
		smp.divergences = s.Value
	}
	if s, ok := nodeSeries(fams, "caesar_audit_writes_total"); ok {
		smp.auditWrites = s.Value
	}
	return smp
}

// fmtDur renders a seconds value compactly (µs/ms/s).
func fmtDur(sec float64) string {
	switch {
	case sec <= 0:
		return "-"
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// renderHotKeys merges the nodes' contention profiles and prints the
// cluster-wide hot-key panel: keys ranked by total attributed events,
// with the loss decomposition and the wait time each key cost.
func renderHotKeys(w io.Writer, cur []sample, top int) {
	merged := make(map[string]*workloadKey)
	for _, c := range cur {
		for _, k := range c.hot {
			m := merged[k.Key]
			if m == nil {
				cp := k
				merged[k.Key] = &cp
				continue
			}
			m.Events += k.Events
			m.Touches += k.Touches
			m.Nacks += k.Nacks
			m.Waits += k.Waits
			m.Parks += k.Parks
			m.Retries += k.Retries
			m.Recoveries += k.Recoveries
			m.Holds += k.Holds
			m.WaitSeconds += k.WaitSeconds
		}
	}
	if len(merged) == 0 {
		return
	}
	keys := make([]*workloadKey, 0, len(merged))
	for _, m := range merged {
		keys = append(keys, m)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Events != keys[j].Events {
			return keys[i].Events > keys[j].Events
		}
		return keys[i].Key < keys[j].Key
	})
	if len(keys) > top {
		keys = keys[:top]
	}
	fmt.Fprintf(w, "\n%-24s %5s %8s %8s %6s %6s %6s %7s %8s\n",
		"HOT KEY", "GRP", "EVENTS", "TOUCHES", "NACKS", "WAITS", "PARKS", "RETRY", "WAIT")
	for _, k := range keys {
		fmt.Fprintf(w, "%-24s %5d %8d %8d %6d %6d %6d %7d %8s\n",
			k.Key, k.Group, k.Events, k.Touches, k.Nacks, k.Waits, k.Parks,
			k.Retries, fmtDur(k.WaitSeconds))
	}
}

func render(w io.Writer, urls []string, cur, prev []sample, frame, hotTop int) {
	fmt.Fprintf(w, "caesar-top  %s  frame %d\n", time.Now().Format("15:04:05"), frame)
	fmt.Fprintf(w, "%-28s %9s %8s %8s %6s %7s %6s %9s %10s  %s\n",
		"NODE", "OPS/S", "P50", "P99", "FAST%", "XSHARD", "EPOCH", "WATCHDOG", "AUDIT", "SLOWEST")
	for i, u := range urls {
		name := strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")
		c := cur[i]
		if c.err != nil {
			fmt.Fprintf(w, "%-28s down: %v\n", name, c.err)
			continue
		}
		ops := "-"
		if prev != nil && prev[i].err == nil {
			dt := c.when.Sub(prev[i].when).Seconds()
			if dt > 0 {
				ops = fmt.Sprintf("%.0f", (c.executed-prev[i].executed)/dt)
			}
		}
		fastPct := "-"
		if total := c.fast + c.slow; total > 0 {
			fastPct = fmt.Sprintf("%.1f", 100*c.fast/total)
		}
		wd := "ok"
		if c.trips > 0 {
			wd = fmt.Sprintf("%d trips", int64(c.trips))
		}
		if c.stalled {
			wd = "STALLED"
		}
		auditCol := "-"
		if c.auditWrites > 0 || c.divergences > 0 {
			auditCol = "ok"
		}
		if c.divergences > 0 {
			auditCol = fmt.Sprintf("DIVERGED:%d", int64(c.divergences))
		}
		slowest := "-"
		if c.exemplar != "" {
			slowest = fmt.Sprintf("%s (%s)", c.exemplar, fmtDur(c.exemplarSec))
		}
		fmt.Fprintf(w, "%-28s %9s %8s %8s %6s %7.0f %6.0f %9s %10s  %s\n",
			name, ops, fmtDur(c.p50), fmtDur(c.p99), fastPct,
			c.xshardHeld, c.epoch, wd, auditCol, slowest)
	}
	if hotTop > 0 {
		renderHotKeys(w, cur, hotTop)
	}
}

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated metrics base URLs, one per replica (e.g. http://h1:9180,http://h2:9180)")
		interval = flag.Duration("interval", 2*time.Second, "refresh cadence")
		frames   = flag.Int("frames", 0, "stop after this many refreshes (0 = until interrupted)")
		once     = flag.Bool("once", false, "render a single frame without clearing the screen and exit")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-node scrape timeout")
		hotkeys  = flag.Int("hotkeys", 5, "hot-key panel size, merged across the nodes' /workloadz profiles (0 hides the panel)")
	)
	flag.Parse()
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "usage: caesar-top -nodes <url,url,...> [-interval 2s] [-once]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "caesar-top: -nodes named no URLs")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	scrapeAll := func() []sample {
		out := make([]sample, len(urls))
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		for i, u := range urls {
			out[i] = scrape(ctx, client, u)
			if *hotkeys > 0 && out[i].err == nil {
				out[i].hot = scrapeWorkload(ctx, client, u, *hotkeys)
			}
		}
		return out
	}

	if *once {
		render(os.Stdout, urls, scrapeAll(), nil, 1, *hotkeys)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	var prev []sample
	for frame := 1; ; frame++ {
		cur := scrapeAll()
		// Clear screen + home; a full repaint per frame keeps the code
		// trivial and the flicker invisible at 2s cadence.
		fmt.Print("\x1b[2J\x1b[H")
		render(os.Stdout, urls, cur, prev, frame, *hotkeys)
		prev = cur
		if *frames > 0 && frame >= *frames {
			return
		}
		select {
		case <-sig:
			return
		case <-ticker.C:
		}
	}
}
