// Command caesar-bench regenerates the paper's evaluation (Figures 6–12)
// on the simulated five-site WAN. Each figure prints the same rows/series
// the paper plots, and (unless -out "") also writes a machine-readable
// BENCH_<figure>.json next to it — throughput, latency percentiles, the
// key protocol counters, the git revision and a timestamp — so two
// checkouts' results can be diffed with scripts/bench-compare.sh (or
// caesar-bench -compare a.json b.json directly).
//
// Usage:
//
//	caesar-bench -figure 6            # one figure
//	caesar-bench -figure all          # the whole evaluation
//	caesar-bench -figure 9 -scale 0.1 -duration 5s
//	caesar-bench -figure sharding     # 1 vs 2 vs 4 consensus groups/node
//	caesar-bench -figure crossshard   # throughput vs cross-shard txn mix (0–20%)
//	caesar-bench -figure elastic      # throughput through a live 2→4 resize
//	caesar-bench -figure durable      # write-ahead-log cost + crash-recovery time
//	caesar-bench -figure readheavy    # local linearizable reads vs proposed reads
//	caesar-bench -figure 9 -shards 4  # any figure on a sharded deployment
//	caesar-bench -figure sharding -out results/   # JSON into a directory
//	caesar-bench -compare old.json new.json       # diff two result files
//
// Scale 1.0 reproduces the paper's real WAN latencies (slow); the default
// 0.05 keeps delay ratios while running 20× faster. Reported latencies are
// rescaled to paper milliseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"github.com/caesar-consensus/caesar/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caesar-bench:", err)
		os.Exit(1)
	}
}

// benchFile is the schema of BENCH_<figure>.json.
type benchFile struct {
	Figure    string        `json:"figure"`
	GitSHA    string        `json:"git_sha,omitempty"`
	Timestamp string        `json:"timestamp"`
	Scale     float64       `json:"scale"`
	Duration  string        `json:"duration"`
	Seed      int64         `json:"seed"`
	Results   []benchResult `json:"results"`
}

// benchResult is one run's machine-readable row. The label is the row
// key: it encodes the run's configuration, so identical invocations of
// two builds produce matching labels for bench-compare to pair up.
type benchResult struct {
	Label       string  `json:"label"`
	Protocol    string  `json:"protocol"`
	ConflictPct float64 `json:"conflict_pct"`
	Shards      int     `json:"shards"`
	Throughput  float64 `json:"throughput_cmds_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Fast        int64   `json:"fast_decisions"`
	Slow        int64   `json:"slow_decisions"`
	Failed      int64   `json:"failed"`
	Reads       int64   `json:"reads,omitempty"`
	ReadP50Ms   float64 `json:"read_p50_ms,omitempty"`
	ReadP99Ms   float64 `json:"read_p99_ms,omitempty"`
	Fsyncs      int64   `json:"fsyncs,omitempty"`
	// Contention profile (internal/contend): the fast-decision share,
	// acceptor-observed conflict events per completed command, the
	// fast-path-loss decomposition by cause, and the run's hottest key.
	FastShare    float64 `json:"fast_share"`
	ConflictRate float64 `json:"conflict_rate"`
	LossNack     int64   `json:"loss_nack,omitempty"`
	LossBlocked  int64   `json:"loss_blocked,omitempty"`
	LossRetry    int64   `json:"loss_retry,omitempty"`
	LossRecovery int64   `json:"loss_recovery,omitempty"`
	HotKey       string  `json:"hot_key,omitempty"`
	HotKeyEvents int64   `json:"hot_key_events,omitempty"`
}

func msf(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// toRow flattens one harness result: p50 is the count-weighted mean of
// the sites' medians, p99 the worst site's tail (the number an operator
// cares about).
func toRow(r harness.Result) benchResult {
	row := benchResult{
		Label:       r.Label,
		Protocol:    string(r.Protocol),
		ConflictPct: r.ConflictPct,
		Shards:      r.Shards,
		Throughput:  math.Round(r.Throughput*100) / 100,
		Fast:        r.FastDecisions,
		Slow:        r.SlowDecisions,
		Failed:      r.Failed,
		Reads:       r.Reads,
		ReadP50Ms:   msf(r.ReadP50),
		ReadP99Ms:   msf(r.ReadP99),
		Fsyncs:      r.FsyncCount,

		FastShare:    math.Round(r.FastShare*10000) / 10000,
		ConflictRate: math.Round(r.ConflictRate*10000) / 10000,
		LossNack:     r.LossNack,
		LossBlocked:  r.LossBlocked,
		LossRetry:    r.LossRetry,
		LossRecovery: r.LossRecovery,
		HotKey:       r.HotKey,
		HotKeyEvents: r.HotKeyEvents,
	}
	var p50Weighted float64
	var count int64
	var p99 time.Duration
	for _, s := range r.Sites {
		p50Weighted += float64(s.P50) * float64(s.Count)
		count += s.Count
		if s.P99 > p99 {
			p99 = s.P99
		}
	}
	if count > 0 {
		row.P50Ms = msf(time.Duration(p50Weighted / float64(count)))
	}
	row.P99Ms = msf(p99)
	return row
}

// gitSHA best-effort resolves the working tree's revision; empty when
// git (or a repository) is unavailable.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// writeJSON writes BENCH_<figure>.json into dir.
func writeJSON(dir, figure string, base harness.Options, results []harness.Result) error {
	bf := benchFile{
		Figure:    figure,
		GitSHA:    gitSHA(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Scale:     base.Scale,
		Duration:  base.Duration.String(),
		Seed:      base.Seed,
	}
	for _, r := range results {
		bf.Results = append(bf.Results, toRow(r))
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+figure+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d result rows)\n", path, len(bf.Results))
	return nil
}

// compare diffs two BENCH_*.json files row by row, matched on label.
func compare(pathA, pathB string) error {
	load := func(path string) (benchFile, error) {
		var bf benchFile
		data, err := os.ReadFile(path)
		if err != nil {
			return bf, err
		}
		return bf, json.Unmarshal(data, &bf)
	}
	a, err := load(pathA)
	if err != nil {
		return fmt.Errorf("%s: %w", pathA, err)
	}
	b, err := load(pathB)
	if err != nil {
		return fmt.Errorf("%s: %w", pathB, err)
	}
	fmt.Printf("A: %s  figure=%s sha=%.12s at %s\n", pathA, a.Figure, a.GitSHA, a.Timestamp)
	fmt.Printf("B: %s  figure=%s sha=%.12s at %s\n\n", pathB, b.Figure, b.GitSHA, b.Timestamp)
	byLabel := make(map[string]benchResult, len(b.Results))
	for _, r := range b.Results {
		byLabel[r.Label] = r
	}
	pct := func(from, to float64) string {
		if from == 0 {
			return "     n/a"
		}
		return fmt.Sprintf("%+7.1f%%", (to-from)/from*100)
	}
	// fastShare tolerates result files from builds that predate the
	// fast_share field by recomputing it from the decision split.
	fastShare := func(r benchResult) float64 {
		if r.FastShare > 0 {
			return r.FastShare
		}
		if t := r.Fast + r.Slow; t > 0 {
			return float64(r.Fast) / float64(t)
		}
		return 0
	}
	fmt.Printf("%-44s %22s %20s %20s %19s %18s\n",
		"label", "cmds/s A→B", "p50ms A→B", "p99ms A→B", "fast% A→B", "conflict/cmd A→B")
	matched := 0
	for _, ra := range a.Results {
		rb, ok := byLabel[ra.Label]
		if !ok {
			fmt.Printf("%-44s only in A\n", ra.Label)
			continue
		}
		matched++
		delete(byLabel, ra.Label)
		fa, fb := 100*fastShare(ra), 100*fastShare(rb)
		fmt.Printf("%-44s %7.0f→%-7.0f %s %6.1f→%-6.1f %s %6.1f→%-6.1f %s %5.1f→%-5.1f %+5.1fpp %5.2f→%-5.2f %+6.2f\n",
			ra.Label,
			ra.Throughput, rb.Throughput, pct(ra.Throughput, rb.Throughput),
			ra.P50Ms, rb.P50Ms, pct(ra.P50Ms, rb.P50Ms),
			ra.P99Ms, rb.P99Ms, pct(ra.P99Ms, rb.P99Ms),
			fa, fb, fb-fa,
			ra.ConflictRate, rb.ConflictRate, rb.ConflictRate-ra.ConflictRate)
	}
	for _, rb := range b.Results {
		if _, ok := byLabel[rb.Label]; ok {
			fmt.Printf("%-44s only in B\n", rb.Label)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no matching labels between %s and %s", pathA, pathB)
	}
	return nil
}

func run() error {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11a, 11b, 12, sharding, crossshard, elastic, durable, readheavy, or all (the paper's figures)")
		scale    = flag.Float64("scale", 0.05, "WAN latency scale (1.0 = real EC2 latencies)")
		duration = flag.Duration("duration", 3*time.Second, "measurement window per data point")
		warmup   = flag.Duration("warmup", time.Second, "warmup before each measurement")
		clients  = flag.Int("clients", 10, "closed-loop clients per node (latency figures)")
		seed     = flag.Int64("seed", 42, "workload seed")
		shards   = flag.Int("shards", 1, "independent consensus groups per node (keys routed by consistent hashing)")
		obs      = flag.Bool("obs", false, "attach the full observability registry (internal/obs) to every node, to measure its hot-path overhead against a run without it")
		zipf     = flag.Float64("zipf", 0, "skew the workload's shared-pool key draw zipfian with this exponent (> 1 enables; the contention profile then surfaces the heavy hitters). 0 keeps the paper's uniform draw")
		out      = flag.String("out", ".", "directory for machine-readable BENCH_<figure>.json result files (empty disables)")
		cmp      = flag.Bool("compare", false, "diff two BENCH_*.json result files given as arguments, matched row-by-row on label")
	)
	flag.Parse()
	if *cmp {
		if flag.NArg() != 2 {
			return fmt.Errorf("usage: caesar-bench -compare <a.json> <b.json>")
		}
		return compare(flag.Arg(0), flag.Arg(1))
	}

	base := harness.Options{
		Scale:          *scale,
		Duration:       *duration,
		Warmup:         *warmup,
		ClientsPerNode: *clients,
		Seed:           *seed,
		Shards:         *shards,
		Obs:            *obs,
		ZipfS:          *zipf,
	}
	w := os.Stdout
	runs := map[string]func() []harness.Result{
		"6": func() []harness.Result { return harness.Figure6(w, base) },
		"7": func() []harness.Result { return harness.Figure7(w, base) },
		"8": func() []harness.Result { return harness.Figure8(w, base) },
		"9": func() []harness.Result {
			rs := harness.Figure9(w, base, false)
			fmt.Fprintln(w)
			return append(rs, harness.Figure9(w, base, true)...)
		},
		"10":  func() []harness.Result { return harness.Figure10(w, base) },
		"11a": func() []harness.Result { return harness.Figure11a(w, base) },
		"11b": func() []harness.Result { return harness.Figure11b(w, base) },
		"12":  func() []harness.Result { return harness.Figure12(w, base) },
		// Beyond the paper: throughput scaling of the sharded deployment,
		// the cost of the atomic cross-group commit layer as the
		// cross-shard transaction mix grows, and throughput through a
		// live mid-run shard-count resize.
		"sharding":   func() []harness.Result { return harness.Sharding(w, base) },
		"crossshard": func() []harness.Result { return harness.CrossShard(w, base) },
		"elastic":    func() []harness.Result { return harness.Elastic(w, base) },
		// Durable: throughput with the write-ahead log (group-commit
		// fsync batching) vs in-memory, plus cold crash-recovery time.
		"durable": func() []harness.Result { return harness.Durable(w, base) },
		// ReadHeavy: local linearizable reads (internal/reads) vs
		// propose-based reads across 50/90/99% read mixes, with read
		// latency percentiles.
		"readheavy": func() []harness.Result { return harness.ReadHeavy(w, base) },
	}
	emit := func(figure string, results []harness.Result) error {
		if *out == "" {
			return nil
		}
		return writeJSON(*out, figure, base, results)
	}
	if *figure == "all" {
		for _, f := range []string{"6", "7", "8", "9", "10", "11a", "11b", "12"} {
			if err := emit(f, runs[f]()); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	f, ok := runs[*figure]
	if !ok {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	return emit(*figure, f())
}
