// Command caesar-bench regenerates the paper's evaluation (Figures 6–12)
// on the simulated five-site WAN. Each figure prints the same rows/series
// the paper plots.
//
// Usage:
//
//	caesar-bench -figure 6            # one figure
//	caesar-bench -figure all          # the whole evaluation
//	caesar-bench -figure 9 -scale 0.1 -duration 5s
//	caesar-bench -figure sharding     # 1 vs 2 vs 4 consensus groups/node
//	caesar-bench -figure crossshard   # throughput vs cross-shard txn mix (0–20%)
//	caesar-bench -figure elastic      # throughput through a live 2→4 resize
//	caesar-bench -figure durable      # write-ahead-log cost + crash-recovery time
//	caesar-bench -figure readheavy    # local linearizable reads vs proposed reads
//	caesar-bench -figure 9 -shards 4  # any figure on a sharded deployment
//
// Scale 1.0 reproduces the paper's real WAN latencies (slow); the default
// 0.05 keeps delay ratios while running 20× faster. Reported latencies are
// rescaled to paper milliseconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/caesar-consensus/caesar/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caesar-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11a, 11b, 12, sharding, crossshard, elastic, durable, readheavy, or all (the paper's figures)")
		scale    = flag.Float64("scale", 0.05, "WAN latency scale (1.0 = real EC2 latencies)")
		duration = flag.Duration("duration", 3*time.Second, "measurement window per data point")
		warmup   = flag.Duration("warmup", time.Second, "warmup before each measurement")
		clients  = flag.Int("clients", 10, "closed-loop clients per node (latency figures)")
		seed     = flag.Int64("seed", 42, "workload seed")
		shards   = flag.Int("shards", 1, "independent consensus groups per node (keys routed by consistent hashing)")
		obs      = flag.Bool("obs", false, "attach the full observability registry (internal/obs) to every node, to measure its hot-path overhead against a run without it")
	)
	flag.Parse()

	base := harness.Options{
		Scale:          *scale,
		Duration:       *duration,
		Warmup:         *warmup,
		ClientsPerNode: *clients,
		Seed:           *seed,
		Shards:         *shards,
		Obs:            *obs,
	}
	w := os.Stdout
	runs := map[string]func(){
		"6":   func() { harness.Figure6(w, base) },
		"7":   func() { harness.Figure7(w, base) },
		"8":   func() { harness.Figure8(w, base) },
		"9":   func() { harness.Figure9(w, base, false); fmt.Fprintln(w); harness.Figure9(w, base, true) },
		"10":  func() { harness.Figure10(w, base) },
		"11a": func() { harness.Figure11a(w, base) },
		"11b": func() { harness.Figure11b(w, base) },
		"12":  func() { harness.Figure12(w, base) },
		// Beyond the paper: throughput scaling of the sharded deployment,
		// the cost of the atomic cross-group commit layer as the
		// cross-shard transaction mix grows, and throughput through a
		// live mid-run shard-count resize.
		"sharding":   func() { harness.Sharding(w, base) },
		"crossshard": func() { harness.CrossShard(w, base) },
		"elastic":    func() { harness.Elastic(w, base) },
		// Durable: throughput with the write-ahead log (group-commit
		// fsync batching) vs in-memory, plus cold crash-recovery time.
		"durable": func() { harness.Durable(w, base) },
		// ReadHeavy: local linearizable reads (internal/reads) vs
		// propose-based reads across 50/90/99% read mixes, with read
		// latency percentiles.
		"readheavy": func() { harness.ReadHeavy(w, base) },
	}
	if *figure == "all" {
		for _, f := range []string{"6", "7", "8", "9", "10", "11a", "11b", "12"} {
			runs[f]()
			fmt.Fprintln(w)
		}
		return nil
	}
	f, ok := runs[*figure]
	if !ok {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	f()
	return nil
}
