// Command caesar-audit proves — or rules out — cross-replica state
// divergence for a running cluster. Each caesar-server replica folds its
// applied writes into per-group digests and serves them on /auditz (on
// the metrics listener); caesar-audit fetches every replica's quote,
// aligns the comparable ones (same group, routing epoch, write frontier
// and command-identity fold — provably the same applied command multiset)
// and diffs their state digests. A digest mismatch between comparable
// quotes is proven divergence, reported with the full proof bundle.
//
// Usage:
//
//	caesar-audit -nodes http://127.0.0.1:9180,http://127.0.0.1:9181,http://127.0.0.1:9182
//
// One round compares a single gather; -interval > 0 keeps auditing at
// that cadence (and can additionally promote persistent same-frontier
// identity mismatches to "apply-set" divergences), -rounds bounds how
// many rounds run. Exit status: 0 when no divergence was proven, 1 when
// at least one was, 2 on usage errors. Unreachable replicas are reported
// per node; the audit proceeds with whatever the reachable ones quote.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/caesar-consensus/caesar/internal/audit"
)

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated metrics base URLs, one per replica (e.g. http://h1:9180,http://h2:9180)")
		interval = flag.Duration("interval", 0, "keep auditing at this cadence (0 = one round)")
		rounds   = flag.Int("rounds", 0, "with -interval, stop after this many rounds (0 = until interrupted)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-round collection timeout")
		asJSON   = flag.Bool("json", false, "emit each round's reports, stats and divergences as JSON")
	)
	flag.Parse()
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "usage: caesar-audit -nodes <url,url,...> [-interval 2s] [-rounds n]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	var sources []audit.Source
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			sources = append(sources, audit.HTTPSource(client, u))
		}
	}
	if len(sources) == 0 {
		fmt.Fprintln(os.Stderr, "caesar-audit: -nodes named no URLs")
		os.Exit(2)
	}

	col := &audit.Collector{Sources: sources}
	diverged := false
	for round := 1; ; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		reports, fresh := col.RunOnce(ctx)
		cancel()
		_, stats := audit.Diff(reports)
		if len(fresh) > 0 {
			diverged = true
		}
		report(reports, stats, fresh, *asJSON)
		if *interval <= 0 || (*rounds > 0 && round >= *rounds) {
			break
		}
		time.Sleep(*interval)
	}
	if diverged {
		os.Exit(1)
	}
}

// report prints one round's outcome. The text form leads with the
// verdict line the CI smoke test greps for: "no divergence" with the
// comparison counts that make the pass non-vacuous, or the proof bundles.
func report(reports []audit.Report, stats audit.DiffStats, fresh []audit.Divergence, asJSON bool) {
	if asJSON {
		out := struct {
			Stats       audit.DiffStats    `json:"stats"`
			Divergences []audit.Divergence `json:"divergences"`
			Reports     []audit.Report     `json:"reports"`
		}{Stats: stats, Divergences: fresh, Reports: reports}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "caesar-audit: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, rep := range reports {
		if rep.Err != "" {
			fmt.Fprintf(os.Stderr, "caesar-audit: %s unreachable: %s\n", rep.Node, rep.Err)
		}
	}
	if len(fresh) == 0 {
		fmt.Printf("no divergence: %d/%d comparable quote pairs matched across %d nodes, %d groups\n",
			stats.Matched, stats.Compared, stats.Nodes, stats.Groups)
		if stats.Compared == 0 && stats.Nodes > 1 {
			fmt.Println("note: 0 comparable pairs this round (replicas mid-apply or mid-resize) — the pass is vacuous, audit again")
		}
		return
	}
	for _, d := range fresh {
		fmt.Printf("DIVERGENCE %s\n", d)
	}
}
