// Command caesar-client talks to a caesar-server replica's client port.
//
// Usage:
//
//	caesar-client -server 127.0.0.1:8000 put mykey myvalue
//	caesar-client -server 127.0.0.1:8000 get mykey
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
)

func main() {
	server := flag.String("server", "127.0.0.1:8000", "replica client address")
	flag.Parse()
	if err := run(*server, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "caesar-client:", err)
		os.Exit(1)
	}
}

func run(server string, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: caesar-client [-server addr] get <key> | put <key> <value>")
	}
	var line string
	switch strings.ToLower(args[0]) {
	case "get":
		line = fmt.Sprintf("GET %s", args[1])
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("put needs a value")
		}
		line = fmt.Sprintf("PUT %s %s", args[1], args[2])
	default:
		return fmt.Errorf("unknown op %q", args[0])
	}
	conn, err := net.Dial("tcp", server)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, line); err != nil {
		return err
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return err
	}
	fmt.Print(reply)
	return nil
}
