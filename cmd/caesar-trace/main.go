// Command caesar-trace assembles a cluster-wide timeline for one
// command. Each caesar-server node traces into its own local ring, so a
// TRACE admin command only shows one replica's view; caesar-trace
// fetches every node's /tracez JSON (served on the metrics listener) and
// merges the histories into one causally-ordered timeline — ordered by
// logical timestamp and per-node ring sequence, never by wall clock.
//
// Usage:
//
//	caesar-trace -nodes http://127.0.0.1:9180,http://127.0.0.1:9181,http://127.0.0.1:9182 -cmd c0.17
//
// Nodes that never traced the command, evicted it from a wrapped ring,
// or are unreachable are reported per node; the merge proceeds with
// whatever the reachable nodes hold.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/trace"
)

func main() {
	var (
		nodes   = flag.String("nodes", "", "comma-separated metrics base URLs, one per node (e.g. http://h1:9180,http://h2:9180)")
		cmdStr  = flag.String("cmd", "", "command ID to trace, as trace lines print it (c<node>.<seq>)")
		timeout = flag.Duration("timeout", 5*time.Second, "total collection timeout")
		asJSON  = flag.Bool("json", false, "emit the merged timeline and per-node dumps as JSON")
	)
	flag.Parse()
	if *nodes == "" || *cmdStr == "" {
		fmt.Fprintln(os.Stderr, "usage: caesar-trace -nodes <url,url,...> -cmd c<node>.<seq>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	id, err := command.ParseID(*cmdStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caesar-trace: bad -cmd %q: %v\n", *cmdStr, err)
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	dumps := trace.Collect(ctx, &http.Client{Timeout: *timeout}, urls, id)
	merged := trace.MergeDumps(dumps)

	if *asJSON {
		out := struct {
			Cmd      string           `json:"cmd"`
			Timeline []trace.Event    `json:"timeline"`
			Nodes    []trace.NodeDump `json:"nodes"`
		}{Cmd: id.String(), Timeline: merged, Nodes: dumps}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "caesar-trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, d := range dumps {
		if miss := d.Miss(id); miss != "" {
			fmt.Fprintln(os.Stderr, "caesar-trace:", miss)
		}
	}
	if len(merged) == 0 {
		fmt.Fprintf(os.Stderr, "caesar-trace: no events for %v on any of %d node(s)\n", id, len(urls))
		os.Exit(1)
	}
	nodesSeen := map[string]bool{}
	for _, e := range merged {
		nodesSeen[e.Node.String()] = true
	}
	fmt.Printf("== %v: %d events from %d/%d nodes\n", id, len(merged), len(nodesSeen), len(urls))
	fmt.Print(trace.FormatTimeline(merged))
}
