// Command caesar-server runs one CAESAR replica of a multi-process
// cluster: protocol traffic flows over TCP between the configured peers,
// and a line-oriented client port serves GET/PUT requests against the
// replicated key-value store.
//
// Usage (three replicas on one host):
//
//	caesar-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8000
//	caesar-server -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8001
//	caesar-server -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8002
//
// Client protocol (one request per line):
//
//	PUT <key> <value>            →  OK
//	GET <key>                    →  OK <value> | OK
//	MPUT <k1> <v1> <k2> <v2> ... →  OK (one atomic transaction; with
//	                                -shards the keys may span groups and
//	                                commit through the cross-shard layer)
//	RESIZE <n>                   →  OK <n> shards (admin: change the live
//	                                deployment's consensus-group count —
//	                                any replica accepts it; requires
//	                                -shards > 1 at startup)
//
// Unlike PUT — whose value runs to the end of the line — MPUT keys and
// values are single whitespace-separated tokens: a value containing a
// space would silently shift every following pair.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/caesar-consensus/caesar/internal/batch"
	"github.com/caesar-consensus/caesar/internal/caesar"
	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/kvstore"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/rebalance"
	"github.com/caesar-consensus/caesar/internal/shard"
	"github.com/caesar-consensus/caesar/internal/tcpnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/transport"
	"github.com/caesar-consensus/caesar/internal/xshard"
)

func main() {
	var (
		id         = flag.Int("id", 0, "this replica's id (index into -peers)")
		peers      = flag.String("peers", "", "comma-separated replica addresses")
		clientAddr = flag.String("client", "", "client-facing listen address")
		shards     = flag.Int("shards", 1, "independent consensus groups per node (keys are routed by consistent hashing)")
	)
	flag.Parse()
	if err := run(*id, *peers, *clientAddr, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "caesar-server:", err)
		os.Exit(1)
	}
}

func run(id int, peerList, clientAddr string, shards int) error {
	addrs := strings.Split(peerList, ",")
	if len(addrs) < 3 {
		return fmt.Errorf("need at least 3 peers, got %d", len(addrs))
	}
	if clientAddr == "" {
		return fmt.Errorf("missing -client address")
	}
	tr, err := tcpnet.Listen(tcpnet.Config{Self: timestamp.NodeID(id), Addrs: addrs})
	if err != nil {
		return err
	}
	store := kvstore.New()
	app := batch.NewApplier(store)
	var rep protocol.Engine
	if shards > 1 {
		// Every group shares the store, the cross-shard commit table and
		// the rebalance coordinator; the mux gives each a logical channel
		// over the one TCP transport, multi-key MPUTs spanning groups
		// commit atomically through the table, and the admin RESIZE
		// command changes the group count live.
		table := xshard.NewTable(xshard.TableConfig{Self: timestamp.NodeID(id), Exec: app})
		co := rebalance.NewCoordinator(rebalance.Config{
			Self:   timestamp.NodeID(id),
			Export: store.Export,
			Import: store.Import,
		}, shards)
		inner := shard.New(tr, shards, func(g int, sep transport.Endpoint) protocol.Engine {
			return caesar.New(sep, co.Applier(g, table.Applier(g, app)), caesar.Config{})
		})
		rep = rebalance.NewEngine(xshard.New(inner, table), co)
	} else {
		rep = caesar.New(tr, app, caesar.Config{})
	}
	rep.Start()
	defer rep.Stop()
	log.Printf("replica %d up: protocol %s, clients %s, shards %d", id, addrs[id], clientAddr, max(shards, 1))

	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return err
	}
	defer ln.Close()
	go serveClients(ln, rep)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("replica %d shutting down", id)
	return nil
}

// serveClients accepts client connections and executes their requests
// through consensus.
func serveClients(ln net.Listener, rep protocol.Engine) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handleClient(conn, rep)
	}
}

// handleResize serves the RESIZE admin command: it changes the live
// deployment's consensus-group count through the rebalance layer and
// replies once the transition completed on this replica (the peers finish
// theirs as the markers deliver).
func handleResize(out *bufio.Writer, rep protocol.Engine, arg string) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		fmt.Fprintf(out, "ERR usage: RESIZE <shards> (a positive group count)\n")
		return
	}
	re, ok := rep.(*rebalance.Engine)
	if !ok {
		fmt.Fprintf(out, "ERR this replica is not sharded (start it with -shards > 1)\n")
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := re.Resize(ctx, n); err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(out, "OK %d shards\n", re.Shards())
}

// parseMPut builds one atomic multi-put transaction from an MPUT line.
// Keys and values are single tokens (no spaces) — see the client protocol
// comment above.
func parseMPut(line string) (command.Command, error) {
	fields := strings.Fields(line)[1:]
	if len(fields) == 0 || len(fields)%2 != 0 {
		return command.Command{}, fmt.Errorf("usage: MPUT <key> <value> [<key> <value>...] (single-token values)")
	}
	cmds := make([]command.Command, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		cmds = append(cmds, command.Put(fields[i], []byte(fields[i+1])))
	}
	if len(cmds) == 1 {
		return cmds[0], nil
	}
	return batch.Pack(cmds)
}

func handleClient(conn net.Conn, rep protocol.Engine) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.SplitN(line, " ", 3)
		var cmd command.Command
		switch {
		case len(fields) == 3 && strings.EqualFold(fields[0], "PUT"):
			cmd = command.Put(fields[1], []byte(fields[2]))
		case len(fields) == 2 && strings.EqualFold(fields[0], "GET"):
			cmd = command.Get(fields[1])
		case strings.EqualFold(fields[0], "MPUT"):
			var err error
			if cmd, err = parseMPut(line); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				out.Flush()
				continue
			}
		case len(fields) == 2 && strings.EqualFold(fields[0], "RESIZE"):
			handleResize(out, rep, fields[1])
			out.Flush()
			continue
		default:
			fmt.Fprintf(out, "ERR usage: PUT <key> <value> | GET <key> | MPUT <k> <v> [<k> <v>...] | RESIZE <shards>\n")
			out.Flush()
			continue
		}
		ch := make(chan protocol.Result, 1)
		rep.Submit(cmd, func(res protocol.Result) { ch <- res })
		res := <-ch
		switch {
		case res.Err != nil:
			fmt.Fprintf(out, "ERR %v\n", res.Err)
		case len(res.Value) > 0:
			fmt.Fprintf(out, "OK %s\n", res.Value)
		default:
			fmt.Fprintf(out, "OK\n")
		}
		out.Flush()
	}
}
