// Command caesar-server runs one CAESAR replica of a multi-process
// cluster: protocol traffic flows over TCP between the configured peers,
// and a line-oriented client port serves GET/PUT requests against the
// replicated key-value store.
//
// Usage (three replicas on one host):
//
//	caesar-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8000
//	caesar-server -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8001
//	caesar-server -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8002
//
// Client protocol (one request per line):
//
//	PUT <key> <value>            →  OK
//	GET <key>                    →  OK <value> | OK (served from the local
//	                                read engine — linearizable, no
//	                                consensus round; see internal/reads)
//	MGET <k1> <k2> ...           →  OK <v1> <v2> ... (one local snapshot
//	                                read across keys — and, with -shards,
//	                                across consensus groups; absent keys
//	                                read "-")
//	MPUT <k1> <v1> <k2> <v2> ... →  OK (one atomic transaction; with
//	                                -shards the keys may span groups and
//	                                commit through the cross-shard layer)
//	RESIZE <n>                   →  OK <n> shards (admin: change the live
//	                                deployment's consensus-group count —
//	                                any replica accepts it; requires
//	                                -shards > 1 at startup)
//
// Unlike PUT — whose value runs to the end of the line — MPUT/MGET keys
// and values are single whitespace-separated tokens: a value containing a
// space would silently shift every following pair.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/caesar-consensus/caesar/internal/batch"
	"github.com/caesar-consensus/caesar/internal/caesar"
	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/rebalance"
	"github.com/caesar-consensus/caesar/internal/stack"
	"github.com/caesar-consensus/caesar/internal/tcpnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/transport"
	"github.com/caesar-consensus/caesar/internal/wal"
)

func main() {
	var (
		id         = flag.Int("id", 0, "this replica's id (index into -peers)")
		peers      = flag.String("peers", "", "comma-separated replica addresses")
		clientAddr = flag.String("client", "", "client-facing listen address")
		shards     = flag.Int("shards", 1, "independent consensus groups per node (keys are routed by consistent hashing)")
		dataDir    = flag.String("data-dir", "", "durable write-ahead log directory; the replica recovers from it on restart (empty = in-memory only)")
	)
	flag.Parse()
	if err := run(*id, *peers, *clientAddr, *shards, *dataDir); err != nil {
		fmt.Fprintln(os.Stderr, "caesar-server:", err)
		os.Exit(1)
	}
}

func run(id int, peerList, clientAddr string, shards int, dataDir string) error {
	addrs := strings.Split(peerList, ",")
	if len(addrs) < 3 {
		return fmt.Errorf("need at least 3 peers, got %d", len(addrs))
	}
	if clientAddr == "" {
		return fmt.Errorf("missing -client address")
	}
	tr, err := tcpnet.Listen(tcpnet.Config{Self: timestamp.NodeID(id), Addrs: addrs})
	if err != nil {
		return err
	}
	// One shared stack constructor wires store, commit table, rebalance
	// coordinator and (with -data-dir) the write-ahead log: every group
	// shares them, multi-key MPUTs spanning groups commit atomically, the
	// admin RESIZE changes the group count live, and a replica restarted
	// on the same -data-dir replays its snapshot + log tail — including
	// the routing epoch it crashed at — before rejoining.
	stk, err := stack.Build(tr, stack.Config{
		Shards:    shards,
		DataDir:   dataDir,
		Rebalance: true,
		Build: func(_ int, sep transport.Endpoint, app protocol.Applier, seed wal.GroupSeed) protocol.Engine {
			return caesar.New(sep, app, caesar.Config{
				Predelivered: seed.Delivered,
				SeqFloor:     seed.SeqFloor,
				ClockSeed:    seed.ClockSeed,
				ReserveSeq:   seed.ReserveSeq,
				ReserveClock: seed.ReserveClock,
			})
		},
	})
	if err != nil {
		return err
	}
	stk.Start()
	if recovered := stk.Recovered; recovered != nil && !recovered.Empty {
		// The replay lands directly in the node's store (wal.OpenInto), so
		// the store is where the recovered key count lives.
		log.Printf("replica %d recovered %d keys (%d commands applied) from %s", id, stk.Store.Len(), recovered.Applied, dataDir)
	}
	log.Printf("replica %d up: protocol %s, clients %s, shards %d", id, addrs[id], clientAddr, stk.Shards)

	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return err
	}
	go serveClients(ln, stk)

	// Graceful shutdown on the first SIGINT/SIGTERM: stop accepting
	// clients, quiesce the engines, flush and close the WAL (clean-path
	// restarts recover from it just like hard kills — kill -9 exercises
	// the other path). A second signal force-exits.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("replica %d shutting down (signal again to force)", id)
	done := make(chan struct{})
	go func() {
		ln.Close()
		stk.Stop()
		close(done)
	}()
	select {
	case <-done:
		log.Printf("replica %d stopped cleanly", id)
	case <-sig:
		log.Printf("replica %d forced exit", id)
	case <-time.After(10 * time.Second):
		log.Printf("replica %d shutdown timed out", id)
	}
	return nil
}

// serveClients accepts client connections and executes their requests —
// writes through consensus, reads through the node-local read engine.
func serveClients(ln net.Listener, stk *stack.Stack) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handleClient(conn, stk)
	}
}

// handleResize serves the RESIZE admin command: it changes the live
// deployment's consensus-group count through the rebalance layer and
// replies once the transition completed on this replica (the peers finish
// theirs as the markers deliver).
func handleResize(out *bufio.Writer, rep protocol.Engine, arg string) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		fmt.Fprintf(out, "ERR usage: RESIZE <shards> (a positive group count)\n")
		return
	}
	re, ok := rep.(*rebalance.Engine)
	if !ok {
		fmt.Fprintf(out, "ERR this replica is not sharded (start it with -shards > 1)\n")
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := re.Resize(ctx, n); err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(out, "OK %d shards\n", re.Shards())
}

// parseMPut builds one atomic multi-put transaction from an MPUT line.
// Keys and values are single tokens (no spaces) — see the client protocol
// comment above.
func parseMPut(line string) (command.Command, error) {
	fields := strings.Fields(line)[1:]
	if len(fields) == 0 || len(fields)%2 != 0 {
		return command.Command{}, fmt.Errorf("usage: MPUT <key> <value> [<key> <value>...] (single-token values)")
	}
	cmds := make([]command.Command, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		cmds = append(cmds, command.Put(fields[i], []byte(fields[i+1])))
	}
	if len(cmds) == 1 {
		return cmds[0], nil
	}
	return batch.Pack(cmds)
}

// readTimeout bounds a local read's frontier wait; a read that cannot
// settle within it (a wedged deployment) reports the error instead of
// hanging the connection.
const readTimeout = 30 * time.Second

// handleGet serves GET from the node-local read engine — stamped against
// the key's group clock, answered once the delivery frontier passes the
// stamp, linearizable with no consensus round — falling back to a
// proposed read only if local reads are unavailable.
func handleGet(out *bufio.Writer, stk *stack.Stack, key string) bool {
	if stk.Reads == nil || !stk.Reads.Available() {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	val, _, err := stk.Reads.Read(ctx, key)
	switch {
	case err != nil:
		fmt.Fprintf(out, "ERR %v\n", err)
	case len(val) > 0:
		fmt.Fprintf(out, "OK %s\n", val)
	default:
		fmt.Fprintf(out, "OK\n")
	}
	return true
}

// handleMGet serves MGET: one consistent local snapshot across the keys
// (and, in a sharded deployment, across consensus groups) at a merged
// read timestamp — an atomic MPUT's values appear all together or not at
// all. Absent keys render as "-".
func handleMGet(out *bufio.Writer, stk *stack.Stack, keys []string) {
	if len(keys) == 0 {
		fmt.Fprintf(out, "ERR usage: MGET <key> [<key>...]\n")
		return
	}
	if stk.Reads == nil || !stk.Reads.Available() {
		fmt.Fprintf(out, "ERR snapshot reads unavailable on this replica\n")
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	vals, present, err := stk.Reads.ReadTx(ctx, keys)
	if err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		if !present[i] || len(v) == 0 {
			parts[i] = "-"
			continue
		}
		parts[i] = string(v)
	}
	fmt.Fprintf(out, "OK %s\n", strings.Join(parts, " "))
}

func handleClient(conn net.Conn, stk *stack.Stack) {
	defer conn.Close()
	rep := stk.Engine
	sc := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.SplitN(line, " ", 3)
		var cmd command.Command
		switch {
		case len(fields) == 3 && strings.EqualFold(fields[0], "PUT"):
			cmd = command.Put(fields[1], []byte(fields[2]))
		case len(fields) == 2 && strings.EqualFold(fields[0], "GET"):
			if handleGet(out, stk, fields[1]) {
				out.Flush()
				continue
			}
			cmd = command.Get(fields[1])
		case strings.EqualFold(fields[0], "MGET"):
			// Re-tokenize on purpose: fields came from SplitN(line, 3)
			// (PUT values run to end of line), which would fold keys
			// 2..N into one token.
			handleMGet(out, stk, strings.Fields(line)[1:])
			out.Flush()
			continue
		case strings.EqualFold(fields[0], "MPUT"):
			var err error
			if cmd, err = parseMPut(line); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				out.Flush()
				continue
			}
		case len(fields) == 2 && strings.EqualFold(fields[0], "RESIZE"):
			handleResize(out, rep, fields[1])
			out.Flush()
			continue
		default:
			fmt.Fprintf(out, "ERR usage: PUT <key> <value> | GET <key> | MGET <k> [<k>...] | MPUT <k> <v> [<k> <v>...] | RESIZE <shards>\n")
			out.Flush()
			continue
		}
		ch := make(chan protocol.Result, 1)
		rep.Submit(cmd, func(res protocol.Result) { ch <- res })
		res := <-ch
		switch {
		case res.Err != nil:
			fmt.Fprintf(out, "ERR %v\n", res.Err)
		case len(res.Value) > 0:
			fmt.Fprintf(out, "OK %s\n", res.Value)
		default:
			fmt.Fprintf(out, "OK\n")
		}
		out.Flush()
	}
}
