// Command caesar-server runs one CAESAR replica of a multi-process
// cluster: protocol traffic flows over TCP between the configured peers,
// and a line-oriented client port serves GET/PUT requests against the
// replicated key-value store.
//
// Usage (three replicas on one host):
//
//	caesar-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8000
//	caesar-server -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8001
//	caesar-server -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8002
//
// Client protocol (one request per line):
//
//	PUT <key> <value>   →  OK
//	GET <key>           →  OK <value> | OK
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/caesar-consensus/caesar/internal/caesar"
	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/kvstore"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/shard"
	"github.com/caesar-consensus/caesar/internal/tcpnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/transport"
)

func main() {
	var (
		id         = flag.Int("id", 0, "this replica's id (index into -peers)")
		peers      = flag.String("peers", "", "comma-separated replica addresses")
		clientAddr = flag.String("client", "", "client-facing listen address")
		shards     = flag.Int("shards", 1, "independent consensus groups per node (keys are routed by consistent hashing)")
	)
	flag.Parse()
	if err := run(*id, *peers, *clientAddr, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "caesar-server:", err)
		os.Exit(1)
	}
}

func run(id int, peerList, clientAddr string, shards int) error {
	addrs := strings.Split(peerList, ",")
	if len(addrs) < 3 {
		return fmt.Errorf("need at least 3 peers, got %d", len(addrs))
	}
	if clientAddr == "" {
		return fmt.Errorf("missing -client address")
	}
	tr, err := tcpnet.Listen(tcpnet.Config{Self: timestamp.NodeID(id), Addrs: addrs})
	if err != nil {
		return err
	}
	store := kvstore.New()
	var rep protocol.Engine
	if shards > 1 {
		// Every group shares the store; the mux gives each a logical
		// channel over the one TCP transport.
		rep = shard.New(tr, shards, func(_ int, sep transport.Endpoint) protocol.Engine {
			return caesar.New(sep, store, caesar.Config{})
		})
	} else {
		rep = caesar.New(tr, store, caesar.Config{})
	}
	rep.Start()
	defer rep.Stop()
	log.Printf("replica %d up: protocol %s, clients %s, shards %d", id, addrs[id], clientAddr, max(shards, 1))

	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return err
	}
	defer ln.Close()
	go serveClients(ln, rep)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("replica %d shutting down", id)
	return nil
}

// serveClients accepts client connections and executes their requests
// through consensus.
func serveClients(ln net.Listener, rep protocol.Engine) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handleClient(conn, rep)
	}
}

func handleClient(conn net.Conn, rep protocol.Engine) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	for sc.Scan() {
		fields := strings.SplitN(strings.TrimSpace(sc.Text()), " ", 3)
		var cmd command.Command
		switch {
		case len(fields) == 3 && strings.EqualFold(fields[0], "PUT"):
			cmd = command.Put(fields[1], []byte(fields[2]))
		case len(fields) == 2 && strings.EqualFold(fields[0], "GET"):
			cmd = command.Get(fields[1])
		default:
			fmt.Fprintf(out, "ERR usage: PUT <key> <value> | GET <key>\n")
			out.Flush()
			continue
		}
		ch := make(chan protocol.Result, 1)
		rep.Submit(cmd, func(res protocol.Result) { ch <- res })
		res := <-ch
		switch {
		case res.Err != nil:
			fmt.Fprintf(out, "ERR %v\n", res.Err)
		case len(res.Value) > 0:
			fmt.Fprintf(out, "OK %s\n", res.Value)
		default:
			fmt.Fprintf(out, "OK\n")
		}
		out.Flush()
	}
}
