// Command caesar-server runs one CAESAR replica of a multi-process
// cluster: protocol traffic flows over TCP between the configured peers,
// and a line-oriented client port serves GET/PUT requests against the
// replicated key-value store.
//
// Usage (three replicas on one host):
//
//	caesar-server -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8000
//	caesar-server -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8001
//	caesar-server -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -client 127.0.0.1:8002
//
// Client protocol (one request per line):
//
//	PUT <key> <value>            →  OK
//	GET <key>                    →  OK <value> | OK (served from the local
//	                                read engine — linearizable, no
//	                                consensus round; see internal/reads)
//	MGET <k1> <k2> ...           →  OK <v1> <v2> ... (one local snapshot
//	                                read across keys — and, with -shards,
//	                                across consensus groups; absent keys
//	                                read "-")
//	MPUT <k1> <v1> <k2> <v2> ... →  OK (one atomic transaction; with
//	                                -shards the keys may span groups and
//	                                commit through the cross-shard layer)
//	RESIZE <n>                   →  OK <n> shards (admin: change the live
//	                                deployment's consensus-group count —
//	                                any replica accepts it; requires
//	                                -shards > 1 at startup)
//	STATS                        →  OK k=v ... (admin: one-line snapshot of
//	                                the replica's protocol counters)
//	TRACE <cmd-id>               →  the traced milestones of one command
//	                                (as printed by the slow-command log,
//	                                e.g. TRACE c0.17), one per line, then
//	                                OK <n> events; needs -trace-buffer > 0.
//	                                A miss distinguishes "never traced
//	                                here" from "ring may have evicted it"
//	                                and points at caesar-trace for the
//	                                cluster-wide view.
//	DIAGNOSE                     →  the stall watchdog's on-demand
//	                                diagnosis bundle (admin: tripped
//	                                probes, commit-table detail, flight-
//	                                recorder tail), then OK
//	FLIGHT [<n>]                 →  the newest n (default 32) flight-
//	                                recorder events, then OK <n> events
//	AUDIT                        →  the replica's applied-state audit
//	                                quote: one line per consensus group
//	                                (routing epoch, write frontier, state
//	                                digest, identity fold) plus recent
//	                                cut-point stamps, then OK <n> groups —
//	                                the admin-port complement of /auditz
//	                                (cmd/caesar-audit compares these
//	                                across replicas)
//	WORKLOAD [<n>]               →  the replica's contention profile
//	                                (admin): the fast-path-loss
//	                                decomposition by cause (total, then per
//	                                consensus group) and the n hottest keys
//	                                (default 10) with their per-cause
//	                                attribution, then OK <n> keys — the
//	                                admin-port complement of /workloadz
//
// With -metrics-addr the replica additionally serves an observability
// HTTP endpoint: /metrics (Prometheus text format), /statusz (JSON),
// /healthz, /readyz, the standard pprof handlers under /debug/pprof/,
// /debugz (the stall watchdog's diagnosis bundle; ?last=1 for the most
// recent trip), /tracez (the command-trace ring as JSON; ?cmd=c0.17
// filters to one command — the per-node endpoint cmd/caesar-trace merges
// across replicas), /auditz (the replica's applied-state digests as
// JSON, the endpoint cmd/caesar-audit diffs across replicas) and
// /workloadz (the contention profile: hot keys and per-group fast-path
// losses as JSON; ?top=N caps the key list).
//
// With -audit-peers (a comma-separated list of every replica's metrics
// base URL) the replica additionally runs the cross-replica auditor
// in-process: every -audit-interval it gathers all replicas' /auditz
// quotes and, on a proven divergence, records a flight event, bumps
// caesar_audit_divergence_total and logs the proof bundle — the always-on
// alternative to running cmd/caesar-audit out-of-process.
//
// Unlike PUT — whose value runs to the end of the line — MPUT/MGET keys
// and values are single whitespace-separated tokens: a value containing a
// space would silently shift every following pair.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/caesar-consensus/caesar/internal/audit"
	"github.com/caesar-consensus/caesar/internal/batch"
	"github.com/caesar-consensus/caesar/internal/caesar"
	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/contend"
	"github.com/caesar-consensus/caesar/internal/flight"
	"github.com/caesar-consensus/caesar/internal/metrics"
	"github.com/caesar-consensus/caesar/internal/obs"
	"github.com/caesar-consensus/caesar/internal/protocol"
	"github.com/caesar-consensus/caesar/internal/rebalance"
	"github.com/caesar-consensus/caesar/internal/stack"
	"github.com/caesar-consensus/caesar/internal/tcpnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/trace"
	"github.com/caesar-consensus/caesar/internal/transport"
	"github.com/caesar-consensus/caesar/internal/wal"
)

// options collects the parsed flags.
type options struct {
	id           int
	peers        string
	clientAddr   string
	shards       int
	dataDir      string
	metricsAddr  string
	traceBuffer  int
	slowCommand  time.Duration
	flightBuffer int
	stallAfter   time.Duration
	scanEvery    time.Duration
	auditPeers   string
	auditEvery   time.Duration
}

func main() {
	var o options
	flag.IntVar(&o.id, "id", 0, "this replica's id (index into -peers)")
	flag.StringVar(&o.peers, "peers", "", "comma-separated replica addresses")
	flag.StringVar(&o.clientAddr, "client", "", "client-facing listen address")
	flag.IntVar(&o.shards, "shards", 1, "independent consensus groups per node (keys are routed by consistent hashing)")
	flag.StringVar(&o.dataDir, "data-dir", "", "durable write-ahead log directory; the replica recovers from it on restart (empty = in-memory only)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "observability HTTP listen address serving /metrics, /statusz, /healthz, /readyz and /debug/pprof/ (empty = off)")
	flag.IntVar(&o.traceBuffer, "trace-buffer", 4096, "command-trace ring capacity in events (0 disables tracing)")
	flag.DurationVar(&o.slowCommand, "slow-command", 0, "log the traced history of commands slower than this submit-to-ack latency (0 disables)")
	flag.IntVar(&o.flightBuffer, "flight-buffer", 1024, "flight-recorder ring capacity in node-level events")
	flag.DurationVar(&o.stallAfter, "stall-threshold", 10*time.Second, "stall-watchdog trip threshold for wedged work (0 disables the watchdog)")
	flag.DurationVar(&o.scanEvery, "watchdog-interval", time.Second, "stall-watchdog scan cadence")
	flag.StringVar(&o.auditPeers, "audit-peers", "", "comma-separated metrics base URLs of every replica (e.g. http://127.0.0.1:9000,...); runs the cross-replica state auditor in-process (empty = off)")
	flag.DurationVar(&o.auditEvery, "audit-interval", 2*time.Second, "cadence of the in-process cross-replica auditor (needs -audit-peers)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "caesar-server:", err)
		os.Exit(1)
	}
}

// node bundles one replica's stack with its observability surfaces for
// the client-protocol handlers.
type node struct {
	stk  *stack.Stack
	met  *metrics.Recorder
	ring *trace.Ring
	rec  *flight.Recorder
	tr   *tcpnet.Transport
}

func run(o options) error {
	addrs := strings.Split(o.peers, ",")
	if len(addrs) < 3 {
		return fmt.Errorf("need at least 3 peers, got %d", len(addrs))
	}
	if o.clientAddr == "" {
		return fmt.Errorf("missing -client address")
	}
	tr, err := tcpnet.Listen(tcpnet.Config{Self: timestamp.NodeID(o.id), Addrs: addrs})
	if err != nil {
		return err
	}
	met := metrics.NewRecorder()
	reg := obs.NewRegistry()
	var ring *trace.Ring
	if o.traceBuffer > 0 {
		ring = trace.NewRing(o.traceBuffer)
	}
	rec := flight.New(timestamp.NodeID(o.id), o.flightBuffer)
	// One shared stack constructor wires store, commit table, rebalance
	// coordinator and (with -data-dir) the write-ahead log: every group
	// shares them, multi-key MPUTs spanning groups commit atomically, the
	// admin RESIZE changes the group count live, and a replica restarted
	// on the same -data-dir replays its snapshot + log tail — including
	// the routing epoch it crashed at — before rejoining. The registry and
	// trace ring thread through the same constructor, so every layer a
	// command crosses is observable.
	stk, err := stack.Build(tr, stack.Config{
		Shards:           o.shards,
		Metrics:          met,
		Obs:              reg,
		Trace:            ring,
		DataDir:          o.dataDir,
		Rebalance:        true,
		Flight:           rec,
		StallThreshold:   o.stallAfter,
		WatchdogInterval: o.scanEvery,
		OnStall: func(d *flight.Diagnosis) {
			for _, s := range d.Stalls {
				log.Printf("replica %d STALL %s", o.id, s)
			}
		},
		Build: func(g int, sep transport.Endpoint, app protocol.Applier, seed wal.GroupSeed, gmet *metrics.Recorder, ctd *contend.Group) protocol.Engine {
			return caesar.New(sep, app, caesar.Config{
				Metrics:       gmet,
				Contend:       ctd,
				Trace:         ring,
				Flight:        rec,
				FlightGroup:   int32(g),
				SlowThreshold: o.slowCommand,
				Predelivered:  seed.Delivered,
				SeqFloor:      seed.SeqFloor,
				ClockSeed:     seed.ClockSeed,
				ReserveSeq:    seed.ReserveSeq,
				ReserveClock:  seed.ReserveClock,
			})
		},
	})
	if err != nil {
		return err
	}
	// Per-peer transport counters, sampled from the transport at scrape
	// time.
	for _, p := range tr.Peers() {
		p := p
		ls := obs.Labels{"peer": strconv.Itoa(int(p))}
		reg.CounterFunc("caesar_net_sent_msgs_total",
			"Protocol messages sent to the peer.", ls,
			func() int64 { return tr.PeerStats(p).SentMsgs })
		reg.CounterFunc("caesar_net_sent_bytes_total",
			"Protocol bytes sent to the peer.", ls,
			func() int64 { return tr.PeerStats(p).SentBytes })
		reg.CounterFunc("caesar_net_recv_msgs_total",
			"Protocol messages received from the peer.", ls,
			func() int64 { return tr.PeerStats(p).RecvMsgs })
		reg.CounterFunc("caesar_net_recv_bytes_total",
			"Protocol bytes received from the peer.", ls,
			func() int64 { return tr.PeerStats(p).RecvBytes })
		if p != tr.Self() {
			reg.Gauge("caesar_net_peer_connected",
				"1 while the outbound link to the peer is dialed, 0 otherwise.", ls,
				func() float64 {
					if tr.PeerConnected(p) {
						return 1
					}
					return 0
				})
		}
	}
	reg.Gauge("caesar_net_open_connections",
		"Open transport sockets: accepted inbound plus dialed outbound links.", nil,
		func() float64 { return float64(tr.OpenConns()) })
	var ready atomic.Bool
	reg.SetReady(ready.Load)
	var msrv *http.Server
	if o.metricsAddr != "" {
		msrv = &http.Server{Addr: o.metricsAddr, Handler: reg.Handler()}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("replica %d observability on http://%s/metrics (pprof under /debug/pprof/)", o.id, o.metricsAddr)
	}
	stk.Start()
	if recovered := stk.Recovered; recovered != nil && !recovered.Empty {
		// The replay lands directly in the node's store (wal.OpenInto), so
		// the store is where the recovered key count lives.
		log.Printf("replica %d recovered %d keys (%d commands applied) from %s", o.id, stk.Store.Len(), recovered.Applied, o.dataDir)
	}
	log.Printf("replica %d up: protocol %s, clients %s, shards %d", o.id, addrs[o.id], o.clientAddr, stk.Shards)

	ln, err := net.Listen("tcp", o.clientAddr)
	if err != nil {
		return err
	}
	n := &node{stk: stk, met: met, ring: ring, rec: rec, tr: tr}
	go serveClients(ln, n)
	ready.Store(true)

	// In-process cross-replica auditor: gather every replica's /auditz
	// quotes each interval and raise proven divergences on this node's
	// flight journal and divergence counter. Any replica (or all of them)
	// may run it — raised divergences dedupe per collector, and the check
	// itself is read-only.
	var auditor *audit.Collector
	if o.auditPeers != "" {
		var sources []audit.Source
		for _, base := range strings.Split(o.auditPeers, ",") {
			sources = append(sources, audit.HTTPSource(nil, strings.TrimSpace(base)))
		}
		auditor = &audit.Collector{
			Sources:  sources,
			Interval: o.auditEvery,
			OnDivergence: func(d audit.Divergence) {
				log.Printf("replica %d AUDIT %s", o.id, d)
				stk.NoteDivergence(d)
			},
		}
		auditor.Start()
		log.Printf("replica %d auditing %d peers every %v", o.id, len(sources), o.auditEvery)
	}

	// Graceful shutdown on the first SIGINT/SIGTERM: stop accepting
	// clients, quiesce the engines, flush and close the WAL (clean-path
	// restarts recover from it just like hard kills — kill -9 exercises
	// the other path). A second signal force-exits.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("replica %d shutting down (signal again to force)", o.id)
	ready.Store(false)
	done := make(chan struct{})
	go func() {
		ln.Close()
		if msrv != nil {
			msrv.Close()
		}
		if auditor != nil {
			auditor.Stop()
		}
		stk.Stop()
		close(done)
	}()
	select {
	case <-done:
		log.Printf("replica %d stopped cleanly", o.id)
	case <-sig:
		log.Printf("replica %d forced exit", o.id)
	case <-time.After(10 * time.Second):
		log.Printf("replica %d shutdown timed out", o.id)
	}
	return nil
}

// serveClients accepts client connections and executes their requests —
// writes through consensus, reads through the node-local read engine.
func serveClients(ln net.Listener, n *node) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handleClient(conn, n)
	}
}

// handleStats serves the STATS admin command: a one-line snapshot of the
// replica's protocol counters, the admin-port complement of /metrics.
func handleStats(out *bufio.Writer, n *node) {
	m := n.met
	shards := n.stk.Shards
	epoch := uint32(0)
	if re := n.stk.Resizer; re != nil {
		shards = re.Shards()
		epoch = re.Coordinator().Epoch()
	}
	fmt.Fprintf(out,
		"OK shards=%d epoch=%d proposals=%d executed=%d fast=%d slow=%d retries=%d nacks=%d recoveries=%d read_parks=%d xshard_commits=%d xshard_aborts=%d fsyncs=%d mean_latency=%v p99_latency=%v\n",
		shards, epoch,
		m.Proposals.Load(), m.Executed.Load(),
		m.FastDecisions.Load(), m.SlowDecisions.Load(),
		m.Retries.Load(), m.Nacks.Load(), m.Recoveries.Load(),
		m.ReadFenceParks.Load(),
		m.CrossShardCommits.Load(), m.CrossShardAborts.Load(),
		m.Fsyncs.Load(),
		m.Latency.Mean(), m.Latency.Quantile(0.99))
}

// handleTrace serves the TRACE admin command: one command's buffered
// milestones, oldest first, one per line, terminated by an OK count. A
// miss says whether the command was never traced on this replica (the
// ring has not wrapped, so absence is authoritative) or may have been
// evicted — and points at caesar-trace either way, since another
// replica's ring often still holds the history.
func handleTrace(out *bufio.Writer, n *node, arg string) {
	if n.ring == nil {
		fmt.Fprintf(out, "ERR tracing disabled (start the replica with -trace-buffer > 0)\n")
		return
	}
	id, err := command.ParseID(arg)
	if err != nil {
		fmt.Fprintf(out, "ERR usage: TRACE <cmd-id>: %v\n", err)
		return
	}
	events := n.ring.CommandHistory(id)
	if len(events) == 0 {
		if _, wrapped := n.ring.Stats(); wrapped {
			fmt.Fprintf(out, "# %v not found: ring wrapped, so its history may have been evicted here (try caesar-trace to query every replica)\n", id)
		} else {
			fmt.Fprintf(out, "# %v not found: not in local ring (never traced on this replica; caesar-trace queries the others)\n", id)
		}
	}
	for _, e := range events {
		fmt.Fprintf(out, "%s\n", e)
	}
	fmt.Fprintf(out, "OK %d events\n", len(events))
}

// handleDiagnose serves the DIAGNOSE admin command: the stall watchdog's
// on-demand bundle (or, without a watchdog, the flight-recorder tail),
// one line per bundle line, terminated by OK.
func handleDiagnose(out *bufio.Writer, n *node) {
	var body string
	if wd := n.stk.Watchdog; wd != nil {
		body = wd.Diagnose().Render()
	} else {
		body = "watchdog disabled (start the replica with -stall-threshold > 0)\n" +
			flight.Format(n.rec.Tail(32))
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		fmt.Fprintf(out, "%s\n", line)
	}
	fmt.Fprintf(out, "OK\n")
}

// handleFlight serves the FLIGHT admin command: the newest n events of
// the node's flight recorder, oldest-first.
func handleFlight(out *bufio.Writer, n *node, args []string) {
	max := 32
	if len(args) == 1 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			fmt.Fprintf(out, "ERR usage: FLIGHT [<max-events>]\n")
			return
		}
		max = v
	}
	events := n.rec.Tail(max)
	for _, e := range events {
		fmt.Fprintf(out, "%s\n", e)
	}
	fmt.Fprintf(out, "OK %d events\n", len(events))
}

// handleAudit serves the AUDIT admin command: the replica's applied-state
// audit quote, the admin-port complement of /auditz. One comment line of
// node context, one line per consensus group (epoch, write frontier,
// state digest, identity fold), the recent cut-point stamps, then an OK
// count. cmd/caesar-audit compares the same quotes across replicas.
func handleAudit(out *bufio.Writer, n *node) {
	rep := n.stk.AuditReport()
	fmt.Fprintf(out, "# node=%s epoch=%d resizing=%v applied=%d divergences=%d\n",
		rep.Node, rep.Epoch, rep.Resizing, rep.Applied, n.stk.AuditDivergences())
	for _, g := range rep.Groups {
		fmt.Fprintf(out, "group=%d epoch=%d frontier=%d digest=%s idfold=%s\n",
			g.Group, g.Epoch, g.Frontier, g.Digest, g.IDFold)
	}
	for _, s := range rep.Stamps {
		fmt.Fprintf(out, "stamp kind=%s seq=%d group=%d epoch=%d frontier=%d digest=%s\n",
			s.Kind, s.Seq, s.Group, s.Epoch, s.Frontier, s.Digest)
	}
	fmt.Fprintf(out, "OK %d groups\n", len(rep.Groups))
}

// handleWorkload serves the WORKLOAD admin command: the node's contention
// profile — the fast-path-loss decomposition (total, then per consensus
// group) followed by the hottest keys with their per-cause attribution —
// the admin-port complement of /workloadz.
func handleWorkload(out *bufio.Writer, n *node, args []string) {
	max := 10
	if len(args) == 1 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			fmt.Fprintf(out, "ERR usage: WORKLOAD [<max-keys>]\n")
			return
		}
		max = v
	}
	p := n.stk.Contend
	tot := p.TotalLosses()
	fmt.Fprintf(out, "# fast-path losses: nack=%d blocked=%d retry=%d recovery=%d\n",
		tot.Nack, tot.Blocked, tot.Retry, tot.Recovery)
	for _, gl := range p.GroupLossTable() {
		fmt.Fprintf(out, "group=%d nack=%d blocked=%d retry=%d recovery=%d\n",
			gl.Group, gl.Losses.Nack, gl.Losses.Blocked, gl.Losses.Retry, gl.Losses.Recovery)
	}
	keys := p.TopKeys(max)
	for _, ks := range keys {
		fmt.Fprintf(out, "key=%s group=%d events=%d touches=%d nacks=%d waits=%d parks=%d retries=%d recoveries=%d holds=%d wait=%s\n",
			ks.Key, ks.Group, ks.Events, ks.Touches, ks.Nacks, ks.Waits,
			ks.Parks, ks.Retries, ks.Recoveries, ks.Holds, ks.WaitTime)
	}
	fmt.Fprintf(out, "OK %d keys\n", len(keys))
}

// handleResize serves the RESIZE admin command: it changes the live
// deployment's consensus-group count through the rebalance layer and
// replies once the transition completed on this replica (the peers finish
// theirs as the markers deliver).
func handleResize(out *bufio.Writer, rep protocol.Engine, arg string) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		fmt.Fprintf(out, "ERR usage: RESIZE <shards> (a positive group count)\n")
		return
	}
	re, ok := rep.(*rebalance.Engine)
	if !ok {
		fmt.Fprintf(out, "ERR this replica is not sharded (start it with -shards > 1)\n")
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := re.Resize(ctx, n); err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(out, "OK %d shards\n", re.Shards())
}

// parseMPut builds one atomic multi-put transaction from an MPUT line.
// Keys and values are single tokens (no spaces) — see the client protocol
// comment above.
func parseMPut(line string) (command.Command, error) {
	fields := strings.Fields(line)[1:]
	if len(fields) == 0 || len(fields)%2 != 0 {
		return command.Command{}, fmt.Errorf("usage: MPUT <key> <value> [<key> <value>...] (single-token values)")
	}
	cmds := make([]command.Command, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		cmds = append(cmds, command.Put(fields[i], []byte(fields[i+1])))
	}
	if len(cmds) == 1 {
		return cmds[0], nil
	}
	return batch.Pack(cmds)
}

// readTimeout bounds a local read's frontier wait; a read that cannot
// settle within it (a wedged deployment) reports the error instead of
// hanging the connection.
const readTimeout = 30 * time.Second

// handleGet serves GET from the node-local read engine — stamped against
// the key's group clock, answered once the delivery frontier passes the
// stamp, linearizable with no consensus round — falling back to a
// proposed read only if local reads are unavailable.
func handleGet(out *bufio.Writer, stk *stack.Stack, key string) bool {
	if stk.Reads == nil || !stk.Reads.Available() {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	val, _, err := stk.Reads.Read(ctx, key)
	switch {
	case err != nil:
		fmt.Fprintf(out, "ERR %v\n", err)
	case len(val) > 0:
		fmt.Fprintf(out, "OK %s\n", val)
	default:
		fmt.Fprintf(out, "OK\n")
	}
	return true
}

// handleMGet serves MGET: one consistent local snapshot across the keys
// (and, in a sharded deployment, across consensus groups) at a merged
// read timestamp — an atomic MPUT's values appear all together or not at
// all. Absent keys render as "-".
func handleMGet(out *bufio.Writer, stk *stack.Stack, keys []string) {
	if len(keys) == 0 {
		fmt.Fprintf(out, "ERR usage: MGET <key> [<key>...]\n")
		return
	}
	if stk.Reads == nil || !stk.Reads.Available() {
		fmt.Fprintf(out, "ERR snapshot reads unavailable on this replica\n")
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), readTimeout)
	defer cancel()
	vals, present, err := stk.Reads.ReadTx(ctx, keys)
	if err != nil {
		fmt.Fprintf(out, "ERR %v\n", err)
		return
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		if !present[i] || len(v) == 0 {
			parts[i] = "-"
			continue
		}
		parts[i] = string(v)
	}
	fmt.Fprintf(out, "OK %s\n", strings.Join(parts, " "))
}

func handleClient(conn net.Conn, n *node) {
	defer conn.Close()
	stk := n.stk
	rep := stk.Engine
	sc := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.SplitN(line, " ", 3)
		var cmd command.Command
		switch {
		case len(fields) == 3 && strings.EqualFold(fields[0], "PUT"):
			cmd = command.Put(fields[1], []byte(fields[2]))
		case len(fields) == 2 && strings.EqualFold(fields[0], "GET"):
			if handleGet(out, stk, fields[1]) {
				out.Flush()
				continue
			}
			cmd = command.Get(fields[1])
		case strings.EqualFold(fields[0], "MGET"):
			// Re-tokenize on purpose: fields came from SplitN(line, 3)
			// (PUT values run to end of line), which would fold keys
			// 2..N into one token.
			handleMGet(out, stk, strings.Fields(line)[1:])
			out.Flush()
			continue
		case strings.EqualFold(fields[0], "MPUT"):
			var err error
			if cmd, err = parseMPut(line); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				out.Flush()
				continue
			}
		case len(fields) == 2 && strings.EqualFold(fields[0], "RESIZE"):
			handleResize(out, rep, fields[1])
			out.Flush()
			continue
		case len(fields) == 1 && strings.EqualFold(fields[0], "STATS"):
			handleStats(out, n)
			out.Flush()
			continue
		case len(fields) == 2 && strings.EqualFold(fields[0], "TRACE"):
			handleTrace(out, n, fields[1])
			out.Flush()
			continue
		case len(fields) == 1 && strings.EqualFold(fields[0], "DIAGNOSE"):
			handleDiagnose(out, n)
			out.Flush()
			continue
		case strings.EqualFold(fields[0], "FLIGHT"):
			handleFlight(out, n, strings.Fields(line)[1:])
			out.Flush()
			continue
		case len(fields) == 1 && strings.EqualFold(fields[0], "AUDIT"):
			handleAudit(out, n)
			out.Flush()
			continue
		case strings.EqualFold(fields[0], "WORKLOAD"):
			handleWorkload(out, n, strings.Fields(line)[1:])
			out.Flush()
			continue
		default:
			fmt.Fprintf(out, "ERR usage: PUT <key> <value> | GET <key> | MGET <k> [<k>...] | MPUT <k> <v> [<k> <v>...] | RESIZE <shards> | STATS | TRACE <cmd-id> | DIAGNOSE | FLIGHT [<n>] | AUDIT | WORKLOAD [<n>]\n")
			out.Flush()
			continue
		}
		ch := make(chan protocol.Result, 1)
		rep.Submit(cmd, func(res protocol.Result) { ch <- res })
		res := <-ch
		switch {
		case res.Err != nil:
			fmt.Fprintf(out, "ERR %v\n", res.Err)
		case len(res.Value) > 0:
			fmt.Fprintf(out, "OK %s\n", res.Value)
		default:
			fmt.Fprintf(out, "OK\n")
		}
		out.Flush()
	}
}
