package caesar_test

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"testing"
	"time"

	caesar "github.com/caesar-consensus/caesar"
)

// TestShardedClusterEndToEnd drives a 3-node, 4-shard cluster the way the
// examples do: proposals through every node, keys covering every shard,
// and per-shard execution validated with atomic counters (an Add stream is
// only correct if its shard executed the conflicting commands serially and
// exactly once).
func TestShardedClusterEndToEnd(t *testing.T) {
	const nodes, shards = 3, 4
	cluster, err := caesar.NewLocalCluster(nodes, caesar.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if got := cluster.Node(0).Shards(); got != shards {
		t.Fatalf("Node(0).Shards() = %d, want %d", got, shards)
	}

	// One counter key per shard, so the workload provably touches every
	// consensus group.
	counters := make([]string, shards)
	for s := range counters {
		for i := 0; counters[s] == ""; i++ {
			if k := fmt.Sprintf("counter/%d", i); caesar.ShardOf(k, shards) == s {
				counters[s] = k
			}
		}
	}

	// Every node increments every shard's counter concurrently; the adds
	// on one key conflict, so each shard must order them cluster-wide.
	const addsPerNodePerShard = 5
	var wg sync.WaitGroup
	errs := make(chan error, nodes*shards)
	for n := 0; n < nodes; n++ {
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(n, s int) {
				defer wg.Done()
				node := cluster.Node(n)
				for i := 0; i < addsPerNodePerShard; i++ {
					if _, err := node.Propose(ctx, caesar.Add(counters[s], 1)); err != nil {
						errs <- fmt.Errorf("node %d shard %d add %d: %w", n, s, i, err)
						return
					}
				}
			}(n, s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exactly-once, serial execution per shard: each counter must read the
	// precise total through consensus, from a node that did not touch it
	// last.
	const want = nodes * addsPerNodePerShard
	for s, key := range counters {
		val, err := cluster.Node((s+1)%nodes).Propose(ctx, caesar.Get(key))
		if err != nil {
			t.Fatalf("get %q: %v", key, err)
		}
		if got := caesar.DecodeInt(val); got != want {
			t.Errorf("shard %d counter %q = %d, want %d", s, key, got, want)
		}
	}

	// Plain puts across many keys: values are visible cluster-wide via
	// consensus reads and the proposer's stats aggregate across shards.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("kv/%d", i)
		val := fmt.Sprintf("v%d", i)
		if _, err := cluster.Node(i%nodes).Propose(ctx, caesar.Put(key, []byte(val))); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
		got, err := cluster.Node((i+1)%nodes).Propose(ctx, caesar.Get(key))
		if err != nil || string(got) != val {
			t.Fatalf("get %q = %q, %v; want %q", key, got, err, val)
		}
	}
	for n := 0; n < nodes; n++ {
		if st := cluster.Node(n).Stats(); st.Executed == 0 {
			t.Errorf("node %d reports zero executions across its shards", n)
		}
	}
}

// TestShardOfCoversAndIsStable pins the public routing contract: ShardOf
// spreads the keyspace over every shard and agrees with itself.
func TestShardOfCoversAndIsStable(t *testing.T) {
	const shards = 4
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("user/%d", i)
		s := caesar.ShardOf(key, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%q, %d) = %d", key, shards, s)
		}
		if caesar.ShardOf(key, shards) != s {
			t.Fatalf("ShardOf(%q) unstable", key)
		}
		seen[s] = true
	}
	if len(seen) != shards {
		t.Fatalf("200 keys covered only %d of %d shards", len(seen), shards)
	}
}

// TestShardedClusterCrashTolerance: every consensus group survives a node
// crash independently — writes on every shard still commit through the
// remaining majority.
func TestShardedClusterCrashTolerance(t *testing.T) {
	const shards = 4
	cluster, err := caesar.NewLocalCluster(5,
		caesar.WithShards(shards),
		caesar.WithNodeOptions(caesar.Options{
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    150 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// One key per shard written before the crash, overwritten after.
	keys := make([]string, shards)
	for s := range keys {
		for i := 0; keys[s] == ""; i++ {
			if k := fmt.Sprintf("crash/%d", i); caesar.ShardOf(k, shards) == s {
				keys[s] = k
			}
		}
		if _, err := cluster.Node(0).Propose(ctx, caesar.Put(keys[s], []byte("before"))); err != nil {
			t.Fatalf("pre-crash put on shard %d: %v", s, err)
		}
	}
	cluster.Crash(4)
	for s, key := range keys {
		if _, err := cluster.Node(s%4).Propose(ctx, caesar.Put(key, []byte("after"))); err != nil {
			t.Fatalf("shard %d did not survive the crash: %v", s, err)
		}
		got, err := cluster.Node((s+1)%4).Propose(ctx, caesar.Get(key))
		if err != nil || string(got) != "after" {
			t.Fatalf("shard %d post-crash read = %q, %v; want \"after\"", s, got, err)
		}
	}
}

// TestShardedClusterClosedNode pins the error path sharded nodes share
// with plain ones.
func TestShardedClusterClosedNode(t *testing.T) {
	cluster, err := caesar.NewLocalCluster(3, caesar.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Node(2).Close()
	if _, err := cluster.Node(2).Propose(context.Background(), caesar.Put("k", nil)); err != caesar.ErrClosed {
		t.Fatalf("propose on closed sharded node: %v, want ErrClosed", err)
	}
}

// TestCrossShardTransactionsThroughPublicAPI: multi-key transactions whose
// keys span consensus groups commit atomically under WithShards — the
// ErrCrossShard rejection is gone. Concurrent conflicting transfers from
// every node conserve the total on every replica.
func TestCrossShardTransactionsThroughPublicAPI(t *testing.T) {
	const nodes, shards = 3, 4
	cluster, err := caesar.NewLocalCluster(nodes, caesar.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// One account per shard, so every transfer between distinct accounts
	// spans two consensus groups.
	accounts := make([]string, shards)
	for s := range accounts {
		for i := 0; accounts[s] == ""; i++ {
			if k := fmt.Sprintf("acct/%d", i); caesar.ShardOf(k, shards) == s && !slices.Contains(accounts, k) {
				accounts[s] = k
			}
		}
	}
	const initial = 1000
	for _, k := range accounts {
		if _, err := cluster.Node(0).Propose(ctx, caesar.Add(k, initial)); err != nil {
			t.Fatalf("funding %q: %v", k, err)
		}
	}

	const transfersPerNode = 20
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			node := cluster.Node(n)
			for i := 0; i < transfersPerNode; i++ {
				from := accounts[(n+i)%len(accounts)]
				to := accounts[(n+i+1)%len(accounts)]
				if err := node.ProposeTx(ctx, []caesar.Command{
					caesar.Add(from, -3),
					caesar.Add(to, 3),
				}); err != nil {
					errs <- fmt.Errorf("node %d transfer %d: %w", n, i, err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The total is conserved, read through consensus from every node. A
	// transaction that has executed on its submitter may still be held in
	// a reading node's commit table (one group's piece delivered, the
	// other in flight), so reads taken during that window can straddle
	// it; retry until the sums converge.
	want := int64(initial * len(accounts))
	var total int64
	deadline := time.Now().Add(30 * time.Second)
	for {
		total = 0
		for i, k := range accounts {
			val, err := cluster.Node(i%nodes).Propose(ctx, caesar.Get(k))
			if err != nil {
				t.Fatalf("get %q: %v", k, err)
			}
			total += caesar.DecodeInt(val)
		}
		if total == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("total = %d, want %d (cross-shard transfer lost or duplicated money)", total, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossShardTxUnshardedFallback: ProposeTx on an unsharded cluster is
// an ordinary atomic batch — the same API works at every shard count.
func TestCrossShardTxUnshardedFallback(t *testing.T) {
	cluster, err := caesar.NewLocalCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := cluster.Node(0).ProposeTx(ctx, []caesar.Command{
		caesar.Put("tx/a", []byte("1")),
		caesar.Put("tx/b", []byte("2")),
	}); err != nil {
		t.Fatalf("unsharded ProposeTx: %v", err)
	}
	got, err := cluster.Node(1).Propose(ctx, caesar.Get("tx/b"))
	if err != nil || string(got) != "2" {
		t.Fatalf("get tx/b = %q, %v; want \"2\"", got, err)
	}
}
