// Package caesar is a Go implementation of CAESAR, the multi-leader
// Generalized Consensus protocol of "Speeding up Consensus by Chasing Fast
// Decisions" (Arun, Peluso, Palmieri, Losa, Ravindran — DSN 2017,
// arXiv:1704.03319).
//
// CAESAR replicates a deterministic state machine across a set of nodes
// that may all act as command leaders. Commands carry logical timestamps;
// a fast quorum of ⌈3N/4⌉ acceptors confirms a timestamp in two
// communication delays — even when the acceptors disagree on the command's
// predecessor set, the case that forces competitors such as EPaxos onto
// their slow path. Rejected timestamps retry through a classic quorum of
// ⌊N/2⌋+1 in four delays. Conflicting commands (same key) are executed in
// timestamp order on every node; commuting commands are never ordered.
//
// # Quickstart
//
//	cluster, _ := caesar.NewLocalCluster(5, caesar.WithGeoLatency(0.1))
//	defer cluster.Close()
//
//	node := cluster.Node(0)
//	res, _ := node.Propose(ctx, caesar.Put("accounts/alice", []byte("100")))
//	val, _ := node.Propose(ctx, caesar.Get("accounts/alice"))
//
// Every node accepts proposals; co-locate clients with their nearest node
// as the paper's geo-replicated deployment does. See the examples/
// directory for runnable scenarios and internal/harness for the full
// reproduction of the paper's evaluation (Figures 6–12).
//
// # Sharding
//
// A single CAESAR group totally orders all conflicting commands, so its
// serial delivery pipeline caps aggregate throughput no matter how high
// the fast-decision rate is. WithShards(g) partitions a deployment into g
// independent consensus groups per node:
//
//	cluster, _ := caesar.NewLocalCluster(3, caesar.WithShards(4))
//
// Every command is routed to a group by consistent hashing of its key
// (ShardOf); the hash is stable under growth, moving only ~1/(g+1) of the
// keyspace when a shard is added. Commands on the same key always land on
// the same shard, so conflicting commands keep exactly the single-group
// ordering guarantees, while commands on different shards are proposed,
// stabilized and executed fully in parallel. See internal/shard and
// examples/sharding.
//
// # Cross-shard transactions
//
// Multi-key transactions (ProposeTx) whose keys span groups commit
// atomically through the cross-shard commit layer (internal/xshard): the
// transaction is proposed as one participant piece per touched group, each
// totally ordered by its group's consensus, held in a per-node commit
// table until every group has stabilized its piece, and then applied as
// one indivisible unit at the merged (max) of the per-group stable
// timestamps. A transaction whose coordinator crashes mid-commit is
// finished or aborted by the survivors — it executes on every replica or
// on none (ErrTxAborted), never partially. Guaranteed: per-transaction
// atomicity and exactly-once application at the merged timestamp. Not
// guaranteed: cross-shard strict serializability — while a transaction is
// in flight, other commands on its keys (cross-shard or single-key) may
// be observed before it on one replica and after it on another; keys
// never touched by a cross-shard transaction keep the full single-group
// ordering guarantees. See internal/xshard and examples/bank for an
// atomic transfer workload over four groups.
//
// # Live rebalancing
//
// A sharded deployment can change its group count without downtime:
//
//	err := node.Resize(ctx, 8) // any node of a WithShards cluster
//
// Routing is epoch-versioned — each epoch names one shard count — and a
// resize installs the next epoch behind a consensus-ordered marker: a
// fence command that conflicts with every command of its group, so all
// replicas switch epochs at the exact same point of each group's delivery
// order (the same consensus-ordered-marker trick the paper's recovery
// machinery uses to make state transitions deterministic). Group 0's
// total order of markers serializes concurrent resizes. For each key
// range changing homes, the source group's state is exported at its fence
// point, imported for the destinations, and the cross-shard transactions
// the source ordered pre-fence are drained; commands reaching a key's new
// home early are queued — per-key FIFO, without stalling unrelated
// traffic — until that handoff completes.
//
// Preserved through a resize: exactly-once application of every
// acknowledged command, the per-key total order (old home's order up to
// the fence, then the new home's order, cut identically on every
// replica), and cross-shard atomicity — a ProposeTx straddling the marker
// commits under one epoch everywhere or aborts everywhere and is
// re-proposed under the new routing automatically. Commands routed under
// the old epoch but ordered after their group's fence are skipped
// deterministically and re-proposed by their submitting node; traffic on
// migrating keys stalls at most one handoff round. See internal/rebalance
// for the protocol, `caesar-bench -figure elastic` for throughput through
// a live 2→4 resize, and examples/sharding for a mid-stream resize.
//
// # Durability and crash restart
//
// A node given a data directory survives crashes:
//
//	cluster, _ := caesar.NewLocalCluster(3, caesar.WithDataDir(dir))
//	...
//	cluster.Crash(1)           // kill it
//	err := cluster.Restart(1)  // rebuild it from dir/node1 and rejoin
//
// (Options.DataDir for a single node; `caesar-server -data-dir` for a
// multi-process replica.) Every applied command, executed cross-shard
// transaction, installed routing epoch and ID/clock reservation is
// written to a segmented, CRC-checksummed write-ahead log
// (internal/wal) and fsynced — group commit: many decisions, one sync —
// before its client is acknowledged; periodic snapshots truncate the
// log. A restarted node replays snapshot + log tail to rebuild its
// store, its delivered-command sets, its commit-table state and its
// routing epoch, then rejoins: decisions it missed while down are
// re-sent by their leaders (and, for commands its own previous
// incarnation led, by the surviving replicas), and commands it already
// applied are acknowledged without re-executing — application stays
// exactly once across the crash.
//
// Persisted: everything the node has applied and acknowledged, plus the
// sequence/timestamp floors that keep a new incarnation from colliding
// with its predecessor's identifiers. Not persisted: in-flight protocol
// state (ballots, pending proposals, un-applied decisions) — commands
// in flight at the crash are finished or noop'd by the survivors'
// recovery machinery, exactly as for a permanent failure, and a client
// of the crashed node sees an unknown outcome for them. The crash model
// is fail-stop with stable storage: a node may lose everything after
// its last fsync and recover; Byzantine disks (silent corruption past
// the CRC) and fsync lies are outside it. See internal/wal,
// internal/stack for how the layers compose, `caesar-bench -figure
// durable` for the throughput cost and recovery time, and
// restart_test.go for the crash-restart conformance run.
package caesar
