// Package caesar is a Go implementation of CAESAR, the multi-leader
// Generalized Consensus protocol of "Speeding up Consensus by Chasing Fast
// Decisions" (Arun, Peluso, Palmieri, Losa, Ravindran — DSN 2017,
// arXiv:1704.03319).
//
// CAESAR replicates a deterministic state machine across a set of nodes
// that may all act as command leaders. Commands carry logical timestamps;
// a fast quorum of ⌈3N/4⌉ acceptors confirms a timestamp in two
// communication delays — even when the acceptors disagree on the command's
// predecessor set, the case that forces competitors such as EPaxos onto
// their slow path. Rejected timestamps retry through a classic quorum of
// ⌊N/2⌋+1 in four delays. Conflicting commands (same key) are executed in
// timestamp order on every node; commuting commands are never ordered.
//
// # Quickstart
//
//	cluster, _ := caesar.NewLocalCluster(5, caesar.WithGeoLatency(0.1))
//	defer cluster.Close()
//
//	node := cluster.Node(0)
//	res, _ := node.Propose(ctx, caesar.Put("accounts/alice", []byte("100")))
//	val, _ := node.Propose(ctx, caesar.Get("accounts/alice"))
//
// Every node accepts proposals; co-locate clients with their nearest node
// as the paper's geo-replicated deployment does. See the examples/
// directory for runnable scenarios and internal/harness for the full
// reproduction of the paper's evaluation (Figures 6–12).
//
// # Sharding
//
// A single CAESAR group totally orders all conflicting commands, so its
// serial delivery pipeline caps aggregate throughput no matter how high
// the fast-decision rate is. WithShards(g) partitions a deployment into g
// independent consensus groups per node:
//
//	cluster, _ := caesar.NewLocalCluster(3, caesar.WithShards(4))
//
// Every command is routed to a group by consistent hashing of its key
// (ShardOf); the hash is stable under growth, moving only ~1/(g+1) of the
// keyspace when a shard is added. Commands on the same key always land on
// the same shard, so conflicting commands keep exactly the single-group
// ordering guarantees, while commands on different shards are proposed,
// stabilized and executed fully in parallel. See internal/shard and
// examples/sharding.
//
// # Cross-shard transactions
//
// Multi-key transactions (ProposeTx) whose keys span groups commit
// atomically through the cross-shard commit layer (internal/xshard): the
// transaction is proposed as one participant piece per touched group, each
// totally ordered by its group's consensus, held in a per-node commit
// table until every group has stabilized its piece, and then applied as
// one indivisible unit at the merged (max) of the per-group stable
// timestamps. A transaction whose coordinator crashes mid-commit is
// finished or aborted by the survivors — it executes on every replica or
// on none (ErrTxAborted), never partially. Guaranteed: per-transaction
// atomicity and exactly-once application at the merged timestamp. Not
// guaranteed: cross-shard strict serializability — while a transaction is
// in flight, other commands on its keys (cross-shard or single-key) may
// be observed before it on one replica and after it on another; keys
// never touched by a cross-shard transaction keep the full single-group
// ordering guarantees. See internal/xshard and examples/bank for an
// atomic transfer workload over four groups.
//
// # Live rebalancing
//
// A sharded deployment can change its group count without downtime:
//
//	err := node.Resize(ctx, 8) // any node of a WithShards cluster
//
// Routing is epoch-versioned — each epoch names one shard count — and a
// resize installs the next epoch behind a consensus-ordered marker: a
// fence command that conflicts with every command of its group, so all
// replicas switch epochs at the exact same point of each group's delivery
// order (the same consensus-ordered-marker trick the paper's recovery
// machinery uses to make state transitions deterministic). Group 0's
// total order of markers serializes concurrent resizes. For each key
// range changing homes, the cross-shard transactions the source group
// ordered pre-fence are drained, and state-machine commands reaching a
// key's new home early are queued — per-key FIFO, without stalling
// unrelated traffic — until that handoff completes. (The store is
// node-shared, so no key bytes move: the handoff is purely the ordering
// protocol; cross-shard participant pieces bypass the handoff gate —
// registering one touches only the commit table — which is what keeps
// the handoff's wait graph acyclic.)
//
// Preserved through a resize: exactly-once application of every
// acknowledged command, the per-key total order (old home's order up to
// the fence, then the new home's order, cut identically on every
// replica), and cross-shard atomicity — a ProposeTx straddling the marker
// commits under one epoch everywhere or aborts everywhere and is
// re-proposed under the new routing automatically. Commands routed under
// the old epoch but ordered after their group's fence are skipped
// deterministically and re-proposed by their submitting node; traffic on
// migrating keys stalls at most one handoff round. See internal/rebalance
// for the protocol, `caesar-bench -figure elastic` for throughput through
// a live 2→4 resize, and examples/sharding for a mid-stream resize.
//
// # Read model
//
// Reads are served off the consensus path (internal/reads):
//
//	val, _ := node.Read(ctx, "accounts/alice")            // one key
//	vals, _ := node.ReadTx(ctx, []string{"a", "b", "c"})  // one snapshot
//
// A read is stamped from its key's consensus-group logical clock,
// registered against the group's delivery frontier, and answered from the
// local store the moment every conflicting command below the stamp has
// been applied here — the paper's §IV-A wait condition, applied to reads:
// no proposal, no quorum round-trip, no log record. A small per-key
// version ring in the store answers "as of" the stamp even when later
// writes land during the wait. ReadTx fans the frontier wait across every
// touched group, merges to the max per-group stamp, waits until no held
// cross-shard transaction on its keys could still execute below it, and
// cuts one snapshot under a single store lock.
//
// Guaranteed: a read observes a real point of its key's conflict order —
// never a torn write, never a reordering; a ReadTx snapshot is one
// consistent cut in which a ProposeTx's writes appear for all of its keys
// or for none; reads through one node are monotone per key (a later read
// never sees an older state); a client that writes and reads through the
// same node reads its own writes; and a read observes every command whose
// acknowledgement the serving replica has learned — single-key reads are
// linearizable with respect to everything the replica has heard of.
// During a resize, reads racing the epoch switch retry internally under
// one consistent epoch, and reads of migrating keys stall at most one
// handoff round; after a restart the version window starts empty, so
// reads serve the recovered state directly. Not guaranteed: strict
// cross-node real-time ordering against a command the serving replica has
// not yet received any message for — a write acknowledged elsewhere whose
// first message is still in flight here serializes after the read
// (closing that window requires leases or quorum reads; proposing a Get
// buys it today). See internal/reads for the mechanism and
// `caesar-bench -figure readheavy` for what the local path is worth:
// ≥3–10× propose-based reads at a 90% read mix.
//
// # Durability and crash restart
//
// A node given a data directory survives crashes:
//
//	cluster, _ := caesar.NewLocalCluster(3, caesar.WithDataDir(dir))
//	...
//	cluster.Crash(1)           // kill it
//	err := cluster.Restart(1)  // rebuild it from dir/node1 and rejoin
//
// (Options.DataDir for a single node; `caesar-server -data-dir` for a
// multi-process replica.) Every applied command, executed cross-shard
// transaction, installed routing epoch and ID/clock reservation is
// written to a segmented, CRC-checksummed write-ahead log
// (internal/wal) and fsynced — group commit: many decisions, one sync —
// before its client is acknowledged; periodic snapshots truncate the
// log. A restarted node replays snapshot + log tail to rebuild its
// store, its delivered-command sets, its commit-table state and its
// routing epoch, then rejoins: decisions it missed while down are
// re-sent by their leaders (and, for commands its own previous
// incarnation led, by the surviving replicas), and commands it already
// applied are acknowledged without re-executing — application stays
// exactly once across the crash.
//
// Persisted: everything the node has applied and acknowledged, plus the
// sequence/timestamp floors that keep a new incarnation from colliding
// with its predecessor's identifiers. Not persisted: in-flight protocol
// state (ballots, pending proposals, un-applied decisions) — commands
// in flight at the crash are finished or noop'd by the survivors'
// recovery machinery, exactly as for a permanent failure, and a client
// of the crashed node sees an unknown outcome for them. The crash model
// is fail-stop with stable storage: a node may lose everything after
// its last fsync and recover; Byzantine disks (silent corruption past
// the CRC) and fsync lies are outside it. See internal/wal,
// internal/stack for how the layers compose, `caesar-bench -figure
// durable` for the throughput cost and recovery time, and
// restart_test.go for the crash-restart conformance run.
//
// # Observability
//
// Every layer of the stack records into a unified node-wide metrics
// registry (internal/obs) and, optionally, a bounded protocol-event
// trace ring:
//
//	tr := caesar.NewTrace(8192)
//	cluster, _ := caesar.NewLocalCluster(3, caesar.WithTrace(tr))
//	...
//	fmt.Println(tr.CommandHistory(0, 17)) // propose → … → fsync → ack
//
// (Options.Trace for a single node.) A traced command's history spans
// the whole stack — proposal, acceptor votes, wait condition, retries,
// stability, WAL fsync, cross-shard hold/execute, read-fence
// park/release, resize fences, delivery and the client acknowledgement —
// each event stamped with its node of origin, so one shared ring
// reconstructs a command's life across a cluster. Recording is one short
// critical section per event and the ring overwrites its oldest entries,
// so it is safe to leave on in production. Options.SlowCommandThreshold
// turns the same machinery into a slow-command log: any locally
// submitted command whose submit→ack latency exceeds the threshold is
// dumped with its full traced history.
//
// A multi-process replica exports the registry over HTTP:
//
//	caesar-server -metrics-addr :9100 -trace-buffer 8192 -slow-command 100ms
//
// serves /metrics (Prometheus text format: per-group fast/slow
// decisions, wait-condition time, latency histograms, commit-table
// occupancy and held-transaction age, WAL fsync latency and segment
// stats, read-fence parks, routing epoch and resize state, per-peer
// transport messages/bytes), /statusz (the same families as JSON with
// p50/p99), /healthz + /readyz probes, and the net/http/pprof profiler.
// The client port gains STATS (one-line counter snapshot) and
// TRACE <cmd-id> (one command's buffered history) admin commands. The
// registry reads the same lock-free counters the hot path already
// maintains, so scraping costs the scraper, not the consensus path.
//
// # Diagnosis
//
// Beyond metrics and per-command traces, every node keeps a flight
// recorder and a stall watchdog (internal/flight) for the questions an
// operator asks at 3am: "what happened on this node recently?" and "why
// is nothing making progress?".
//
// The flight recorder is an always-on, bounded, lock-cheap journal of
// structured rare events — node start/stop, leadership recoveries,
// suspected peers, retransmissions, shard resizes, routing-epoch
// installs, WAL snapshots, watchdog stalls — each stamped with a
// monotonic sequence number. Options.FlightBuffer sizes it;
// Node.FlightLog dumps the tail, and `FLIGHT [<n>]` does the same over
// a server's admin port.
//
// The watchdog (Options.StallThreshold to enable) periodically scans
// the node's own progress indicators — the oldest transaction held in
// the cross-shard commit table, the oldest read parked at its delivery
// fence, the oldest locally submitted command still missing its client
// acknowledgement — entirely from the injected clock. When any age
// crosses the threshold it assembles a diagnosis bundle: the wedged
// items oldest-first, each wedged command's full traced history, the
// commit table's held-transaction detail, the rebalance coordinator's
// state, the flight-recorder tail and a goroutine profile. The bundle
// fires Options.OnStall once per healthy→stalled transition, is
// journaled, and is always available on demand: Node.Diagnose /
// Node.LastStall in process, `DIAGNOSE` on the admin port, /debugz
// (current) and /debugz?last=1 (last trip) on the metrics listener.
//
// Each caesar-server node traces into its own ring, so one replica's
// TRACE shows one view. The /tracez endpoint serves a command's local
// events as JSON, and cmd/caesar-trace fetches it from every node and
// merges the per-node histories into a single causally ordered cluster
// timeline — ordered by logical timestamp and per-node sequence, never
// by wall clock:
//
//	caesar-trace -nodes http://h1:9100,http://h2:9100,http://h3:9100 -cmd c0.17
//
// See DIAGNOSING.md for the runbook: which surface to reach for first
// and a worked stall diagnosis.
//
// # Auditing
//
// The fourth observability leg answers "do the replicas still agree?".
// Every replica folds, per consensus group, a pair of 64-bit digests
// over the state it applies (internal/audit): an order-insensitive XOR
// fold, one XOR per write, because CAESAR only orders conflicting
// commands and correct replicas may interleave non-conflicting writes
// differently. The digest folds each write's effect (key, stored value,
// decided timestamp, epoch); a companion idfold folds each command's
// identity (ID, op, key, input value, epoch). Two replicas are compared
// only at a matching cut — same group, epoch, write frontier and idfold
// — so a mismatched digest there proves, in a single gather with no
// settling, that identical inputs produced different states. Lagging
// replicas are skipped, never flagged; a persistent idfold mismatch at
// equal frontiers is reported separately as an apply-set divergence.
//
// In process, Cluster.Audit runs one gather-and-compare round and
// Options.OnDivergence receives a proof bundle (group, epoch, frontier,
// both nodes, both digest pairs) the moment any round proves a
// divergence; the event is also journaled in the involved nodes' flight
// recorders and counted in caesar_audit_divergence_total. Digests are
// stamped at cut points (resize fences, WAL snapshots), persisted in
// snapshots and restored on restart, so a restarted replica re-proves
// agreement instead of starting blind.
//
// Multi-process, each caesar-server serves its audit report at /auditz
// (JSON) and the admin command AUDIT, and can audit its peers
// continuously with -audit-peers. cmd/caesar-audit is the standalone
// checker — one round, a monitor loop, or a JSON proof bundle:
//
//	caesar-audit -nodes http://h1:9100,http://h2:9100,http://h3:9100
//
// and cmd/caesar-top is a live cluster console over /statusz:
// per-node throughput, p50/p99 latency with slowest-command exemplars,
// fast-path share, cross-shard holds, watchdog and audit status in one
// repainting table. See DIAGNOSING.md ("Is the cluster diverged?") for
// the divergence runbook.
//
// # Contention
//
// The fifth observability leg answers "which keys are costing me the
// fast path?". CAESAR's performance story is the fast-decision ratio,
// and it erodes exactly where collisions concentrate: a proposal on a
// contended key draws a NACK and retries at a higher timestamp, or
// blocks in the acceptor's §IV-A wait condition, or parks a local read
// fence behind an in-flight writer, or holds a cross-shard transaction
// open while its groups drain. Every node attributes each such event to
// the offending key (internal/contend): per consensus group, a bounded
// space-saving heavy-hitter sketch tracks the top keys with per-cause
// counts and total attributed wait time — O(K) memory regardless of
// keyspace, one short critical section per touch — while per-group
// atomic counters decompose the fast-path losses by cause (nack,
// blocked, retry, recovery). The sketches aggregate into a node-wide
// contention profile, wired by the stack into every deployment shape,
// resize-created groups included.
//
// The profile surfaces everywhere the other legs do: /workloadz on the
// metrics listener (JSON: top keys and the per-group loss table;
// ?top=N caps the list), the admin command `WORKLOAD [<n>]`, the
// caesar_contention_losses_total{group,cause} counter family and the
// caesar_hotkey_* per-key gauges on /metrics, a merged cluster-wide
// hot-keys panel in cmd/caesar-top, and per-run conflict and fast-share
// fields in caesar-bench's BENCH_<figure>.json rows (compare two builds'
// fast-path health with -compare). caesar-bench -zipf skews the
// workload's shared pool zipfian to reproduce a heavy-hitter profile on
// demand. See DIAGNOSING.md ("Why is my fast-path ratio low?") for the
// runbook.
//
// # Linting
//
// The repo's concurrency and determinism invariants — injected clocks on
// the consensus path, nothing blocking on a group's event loop, declared
// mutex nesting orders, no mixed atomic/plain field access — are
// machine-checked by the caesarlint analyzer suite (tools/caesarlint, a
// separate zero-dependency module). Run ./scripts/lint.sh, or
// `go vet -vettool=` with the built binary; see LINTING.md for each
// invariant, the incident that motivated it, and the
// //caesarlint:allow suppression syntax.
package caesar
