// Package analysis is a self-contained, stdlib-only reimplementation of
// the core of golang.org/x/tools/go/analysis, sized for this repo's lint
// suite. The container building this repo has no module proxy access and
// the root module is deliberately dependency-free, so the framework the
// caesarlint analyzers run on lives here: an Analyzer/Pass pair, an
// in-memory fact store for cross-package results (the standalone runner
// type-checks the whole repo in one process, in dependency order, so
// object identities are shared and facts flow caller-ward for free), and
// the //caesarlint:allow suppression directive shared by every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"reflect"
	"strings"
	"sync"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //caesarlint:allow annotations.
	Name string
	// Doc is the one-paragraph description printed by `caesarlint help`.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Analyzers normally go through
	// Reportf, which also applies //caesarlint:allow suppression.
	Report func(Diagnostic)
	// Facts is the cross-package fact store. The standalone runner shares
	// one store across the whole load (packages are processed in
	// dependency order, so a callee's facts exist before its callers are
	// analyzed); the vettool shim gets a fresh store per process, which
	// degrades fact-dependent checks to package-local scope — documented
	// in LINTING.md.
	Facts *FactStore

	allowOnce sync.Once
	allow     map[string]map[int][]allowDirective // filename → line → directives
}

// Reportf reports a diagnostic at pos unless an //caesarlint:allow
// directive for this analyzer covers the position. A matching directive
// without a rationale suppresses the original finding but produces a
// "needs a rationale" finding of its own, so an empty annotation can
// never silence the linter for free.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// allowDirective is one parsed //caesarlint:allow comment.
type allowDirective struct {
	checks    []string
	rationale string
	line      int // the line the directive text sits on
}

// allowed reports whether pos is covered by an allow directive for
// p.Analyzer.Name, emitting the missing-rationale diagnostic when the
// directive is present but unexplained.
func (p *Pass) allowed(pos token.Pos) bool {
	p.allowOnce.Do(p.buildAllowIndex)
	position := p.Fset.Position(pos)
	byLine := p.allow[position.Filename]
	if byLine == nil {
		return false
	}
	for _, d := range byLine[position.Line] {
		for _, c := range d.checks {
			if c != p.Analyzer.Name && c != "all" {
				continue
			}
			if strings.TrimSpace(d.rationale) == "" {
				p.Report(Diagnostic{
					Pos: pos,
					Message: fmt.Sprintf("//caesarlint:allow %s needs a rationale: write `//caesarlint:allow %s -- <why this site is exempt>`",
						p.Analyzer.Name, p.Analyzer.Name),
				})
			}
			return true
		}
	}
	return false
}

const allowPrefix = "//caesarlint:allow"

// buildAllowIndex scans the raw source of every file in the pass and maps
// each //caesarlint:allow directive to the line(s) it covers: its own
// line (trailing-comment form) and the first following non-blank,
// non-comment line (preceding-comment form). Raw text is used instead of
// the AST comment map so a directive works identically above a statement,
// a field, a function, or trailing any of them.
func (p *Pass) buildAllowIndex() {
	p.allow = make(map[string]map[int][]allowDirective)
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		byLine := make(map[int][]allowDirective)
		lines := strings.Split(string(src), "\n")
		for i, raw := range lines {
			idx := strings.Index(raw, allowPrefix)
			if idx < 0 {
				continue
			}
			d := parseAllow(raw[idx:], i+1)
			if len(d.checks) == 0 {
				continue
			}
			trailing := strings.TrimSpace(raw[:idx]) != ""
			if trailing {
				byLine[i+1] = append(byLine[i+1], d)
				continue
			}
			// Preceding form: cover the next line that holds code.
			for j := i + 1; j < len(lines); j++ {
				t := strings.TrimSpace(lines[j])
				if t == "" || strings.HasPrefix(t, "//") {
					continue
				}
				byLine[j+1] = append(byLine[j+1], d)
				break
			}
		}
		if len(byLine) > 0 {
			p.allow[name] = byLine
		}
	}
}

// parseAllow parses `//caesarlint:allow name1,name2 -- rationale`.
func parseAllow(text string, line int) allowDirective {
	rest := strings.TrimPrefix(text, allowPrefix)
	var rationale string
	if i := strings.Index(rest, "--"); i >= 0 {
		rationale = strings.TrimSpace(rest[i+2:])
		rest = rest[:i]
	}
	var checks []string
	for _, c := range strings.Split(rest, ",") {
		if c = strings.TrimSpace(c); c != "" {
			checks = append(checks, c)
		}
	}
	return allowDirective{checks: checks, rationale: rationale, line: line}
}

// FactStore holds object- and package-level facts shared across the
// packages of one load. All methods are safe for concurrent use.
type FactStore struct {
	mu      sync.Mutex
	objects map[types.Object][]any
	pkgs    []any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{objects: make(map[types.Object][]any)}
}

// ExportObjectFact associates fact with obj.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if obj == nil || p.Facts == nil {
		return
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	p.Facts.objects[obj] = append(p.Facts.objects[obj], fact)
}

// ImportObjectFact copies the fact of *fact's type previously exported
// for obj into fact (a non-nil pointer) and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact any) bool {
	if obj == nil || p.Facts == nil {
		return false
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	want := reflect.TypeOf(fact)
	for _, f := range p.Facts.objects[obj] {
		if reflect.TypeOf(f) == want {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// ExportPackageFact publishes a load-global fact (caesarlint uses these
// for lock-order declarations, which are naturally program-wide).
func (p *Pass) ExportPackageFact(fact any) {
	if p.Facts == nil {
		return
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	p.Facts.pkgs = append(p.Facts.pkgs, fact)
}

// AllPackageFacts returns every package fact in the store assignable to
// example's type.
func (p *Pass) AllPackageFacts(example any) []any {
	if p.Facts == nil {
		return nil
	}
	p.Facts.mu.Lock()
	defer p.Facts.mu.Unlock()
	want := reflect.TypeOf(example)
	var out []any
	for _, f := range p.Facts.pkgs {
		if reflect.TypeOf(f) == want {
			out = append(out, f)
		}
	}
	return out
}
