// Package analysistest runs an analyzer over golden packages under a
// testdata/src tree and checks its diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest (which
// this module cannot depend on — the build environment has no module
// proxy). A want comment asserts one diagnostic on its own line:
//
//	time.Sleep(d) // want `time\.Sleep called on the consensus path`
//
// Multiple quoted (or backquoted) regexps assert multiple diagnostics on
// the same line. Every diagnostic must be wanted and every want must be
// matched, in every loaded package — including testdata dependencies
// pulled in by imports, so cross-package fact flow is testable.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the pattern packages from testdata/src, applies the analyzer
// (sharing one fact store across all loaded packages, dependency-first),
// and reports unmatched wants and unwanted diagnostics through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := analysis.LoadTestdata(fset, testdata+"/src", patterns)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	findings, err := analysis.RunAll(fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var wants []*expectation
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			ws, err := parseWants(fset, name)
			if err != nil {
				t.Fatalf("parsing wants in %s: %v", name, err)
			}
			wants = append(wants, ws...)
		}
	}
finding:
	for _, fd := range findings {
		for _, w := range wants {
			if !w.hit && w.file == fd.Pos.Filename && w.line == fd.Pos.Line && w.re.MatchString(fd.Message) {
				w.hit = true
				continue finding
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", fd.Pos, fd.Message)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants tokenizes one file and extracts its `// want` expectations.
func parseWants(fset *token.FileSet, filename string) ([]*expectation, error) {
	src, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	var sc scanner.Scanner
	file := fset.AddFile(filename+" [wants]", -1, len(src))
	sc.Init(file, src, nil, scanner.ScanComments)
	for {
		pos, tok, lit := sc.Scan()
		if tok == token.EOF {
			break
		}
		if tok != token.COMMENT || !strings.HasPrefix(lit, "//") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(lit, "//"))
		if !strings.HasPrefix(body, "want ") && body != "want" {
			continue
		}
		position := file.Position(pos)
		rest := strings.TrimSpace(strings.TrimPrefix(body, "want"))
		for rest != "" {
			var quoted string
			switch rest[0] {
			case '"':
				end := strings.Index(rest[1:], `"`)
				if end < 0 {
					return nil, fmt.Errorf("%s:%d: unterminated want pattern", filename, position.Line)
				}
				quoted = rest[:end+2]
				rest = strings.TrimSpace(rest[end+2:])
			case '`':
				end := strings.Index(rest[1:], "`")
				if end < 0 {
					return nil, fmt.Errorf("%s:%d: unterminated want pattern", filename, position.Line)
				}
				quoted = rest[:end+2]
				rest = strings.TrimSpace(rest[end+2:])
			default:
				return nil, fmt.Errorf("%s:%d: malformed want comment near %q", filename, position.Line, rest)
			}
			pat, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", filename, position.Line, quoted, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp: %v", filename, position.Line, err)
			}
			out = append(out, &expectation{file: filename, line: position.Line, re: re})
		}
	}
	return out, nil
}
