package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TestVariant marks the augmented [pkg + _test.go] and external
	// _test packages; the runner reports only test-file diagnostics from
	// them so findings in shared files are not doubled.
	TestVariant bool
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath    string
	Dir           string
	Standard      bool
	GoFiles       []string
	TestGoFiles   []string
	XTestGoFiles  []string
	XTestImports  []string
	TestImports   []string
	Imports       []string
	Incomplete    bool
	ForTest       string
	Module        *struct{ Path string }
	DepsErrorsRaw json.RawMessage `json:"DepsErrors"`
}

// Load type-checks the packages matched by patterns (and, transitively,
// their non-standard dependencies) from source, in dependency order, all
// in one process: cross-package references resolve to the same
// types.Object instances, which is what lets the analyzers' fact store
// work without serialized fact files. Standard-library imports are
// resolved by the stdlib source importer, shared (and therefore cached)
// across the whole load. includeTests additionally loads each matched
// package's internal-test augmentation and external _test package.
func Load(fset *token.FileSet, dir string, patterns []string, includeTests bool) ([]*Package, error) {
	// -test pulls test-only dependencies (still in dependency order) into
	// the load, so the test variants below never fall back to the source
	// importer for an in-repo package — that would re-typecheck it into a
	// second, incompatible types.Package. The synthesized test variants
	// themselves (ForTest / pkg.test) are skipped; includeTests builds
	// them explicitly.
	deps, err := goList(dir, append([]string{"-deps", "-test"}, patterns...))
	if err != nil {
		return nil, err
	}
	matched, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	inMatch := make(map[string]bool, len(matched))
	for _, p := range matched {
		inMatch[p.ImportPath] = true
	}

	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := &mapImporter{base: std, pkgs: checked}

	var out []*Package
	check := func(path string, dirpath string, files []string, testVariant bool, imp types.Importer) (*Package, error) {
		var asts []*ast.File
		for _, f := range files {
			file, err := parser.ParseFile(fset, filepath.Join(dirpath, f), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			asts = append(asts, file)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, asts, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", path, err)
		}
		return &Package{Path: path, Files: asts, Types: tpkg, Info: info, TestVariant: testVariant}, nil
	}

	// `go list -deps` emits packages in dependency order, so by the time
	// a package is checked every non-standard import is in `checked`.
	for _, lp := range deps {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.ForTest != "" || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if _, done := checked[lp.ImportPath]; done {
			continue
		}
		pkg, err := check(lp.ImportPath, lp.Dir, lp.GoFiles, false, imp)
		if err != nil {
			return nil, err
		}
		checked[lp.ImportPath] = pkg.Types
		if inMatch[lp.ImportPath] {
			out = append(out, pkg)
		}
	}
	if !includeTests {
		return out, nil
	}
	for _, lp := range matched {
		if lp.Standard {
			continue
		}
		var aug *types.Package
		if len(lp.TestGoFiles) > 0 {
			pkg, err := check(lp.ImportPath, lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...), true, imp)
			if err != nil {
				return nil, err
			}
			aug = pkg.Types
			out = append(out, pkg)
		}
		if len(lp.XTestGoFiles) > 0 {
			ximp := imp
			if aug != nil {
				// The external test package sees the augmented version
				// of the package under test.
				ximp = &mapImporter{base: imp, pkgs: map[string]*types.Package{lp.ImportPath: aug}}
			}
			pkg, err := check(lp.ImportPath+"_test", lp.Dir, lp.XTestGoFiles, true, ximp)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// goList runs `go list -json` with args in dir and decodes the stream.
func goList(dir string, args []string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var out []*listPackage
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		out = append(out, &lp)
	}
	return out, nil
}

// mapImporter serves already-checked packages by path and delegates the
// rest (the standard library) to base.
type mapImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok && p != nil {
		return p, nil
	}
	return m.base.Import(path)
}
