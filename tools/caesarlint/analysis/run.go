package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic bound to its position and analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunAll applies each analyzer to each package, sharing one fact store,
// and returns the findings sorted by position. Packages must arrive in
// dependency order (Load guarantees it) so facts exported by callee
// packages are visible when their callers are analyzed. On test-variant
// packages only diagnostics located in _test.go files are kept, so a
// finding in a shared source file is reported exactly once.
func RunAll(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := NewFactStore()
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if pkg.TestVariant && !strings.HasSuffix(pos.Filename, "_test.go") {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, nil
}
