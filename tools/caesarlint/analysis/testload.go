package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// LoadTestdata loads GOPATH-style golden packages for the analyzer tests:
// each pattern names a directory under srcdir holding one package, whose
// imports resolve first against sibling directories under srcdir (loaded
// recursively, dependency-first, so facts flow) and then against the
// standard library. The returned slice is in dependency order and
// includes the transitively loaded testdata dependencies.
func LoadTestdata(fset *token.FileSet, srcdir string, patterns []string) ([]*Package, error) {
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := &mapImporter{base: std, pkgs: checked}
	var out []*Package
	loading := make(map[string]bool)

	var load func(path string) error
	load = func(path string) error {
		if _, done := checked[path]; done {
			return nil
		}
		if loading[path] {
			return fmt.Errorf("import cycle through testdata package %s", path)
		}
		loading[path] = true
		defer delete(loading, path)

		dir := filepath.Join(srcdir, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var files []*ast.File
		var names []string
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return fmt.Errorf("no Go files in testdata package %s", path)
		}
		// Load testdata-local imports first so the type checker finds
		// them in the map importer.
		for _, f := range files {
			for _, spec := range f.Imports {
				ipath, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if st, err := os.Stat(filepath.Join(srcdir, filepath.FromSlash(ipath))); err == nil && st.IsDir() {
					if err := load(ipath); err != nil {
						return err
					}
				}
			}
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return fmt.Errorf("typecheck testdata %s: %w", path, err)
		}
		checked[path] = tpkg
		out = append(out, &Package{Path: path, Files: files, Types: tpkg, Info: info})
		return nil
	}
	for _, p := range patterns {
		if err := load(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
