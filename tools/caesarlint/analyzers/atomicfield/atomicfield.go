// Package atomicfield enforces the all-or-nothing contract of sync/atomic:
// a struct field that is read or written through the sync/atomic functions
// anywhere must be accessed that way everywhere (construction excepted).
// The internal/obs registry depends on exactly this — scrapes walk the
// hot-path counters lock-free, so one plain `s.n++` next to an
// atomic.AddInt64(&s.n, 1) is a data race the race detector only catches
// if a test happens to interleave a scrape with that line.
//
// A field passed as &x.f to a sync/atomic function is recorded (and
// exported as a fact, so importing packages are checked against exported
// fields too). Every other mention of the field is then flagged unless it
// is (a) another atomic call argument, (b) a composite-literal key —
// initialization before the value is shared, (c) inside a constructor
// (func init or a name starting with New/new), or (d) annotated
// `//caesarlint:allow atomicfield -- <why>`. Typed atomics (atomic.Int64
// and friends) are safe by construction and outside this check's scope —
// misuse of those is copying the struct, which `go vet -copylocks`
// already catches.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "flags non-atomic access to struct fields that are accessed via sync/atomic elsewhere",
	Run:  run,
}

// Fact marks a field as atomically accessed; exported so importing
// packages inherit the constraint (standalone runs only — the vettool
// shim has no cross-process fact files, see LINTING.md).
type Fact struct{ FieldName string }

func run(pass *analysis.Pass) error {
	// Phase 1: collect the fields whose address feeds a sync/atomic call,
	// and remember those sanctioned selector nodes.
	atomicFields := make(map[types.Object]bool)
	sanctioned := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if fld := fieldObject(pass, un.X); fld != nil {
					atomicFields[fld] = true
					sanctioned[un.X] = true
				}
			}
			return true
		})
	}
	for fld := range atomicFields {
		pass.ExportObjectFact(fld, &Fact{FieldName: fld.Name()})
	}
	isAtomic := func(obj types.Object) bool {
		if atomicFields[obj] {
			return true
		}
		var fact Fact
		return pass.ImportObjectFact(obj, &fact)
	}

	// Phase 2: every other mention of such a field must be constructor
	// context or annotated.
	for _, f := range pass.Files {
		compositeKeys := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						compositeKeys[kv.Key] = true
					}
				}
			}
			return true
		})
		var funcStack []string
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, n.Name.Name)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.SelectorExpr:
				if sanctioned[n] || compositeKeys[n] {
					return true
				}
				obj := fieldObject(pass, n)
				if obj == nil || !isAtomic(obj) {
					return true
				}
				if inConstructor(funcStack) {
					return true
				}
				pass.Reportf(n.Sel.Pos(),
					"field %s is accessed via sync/atomic elsewhere; this plain access races the lock-free path — use sync/atomic here, move it into construction, or annotate //caesarlint:allow atomicfield -- <why>",
					obj.Name())
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// isAtomicCall reports whether call invokes a function of sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldObject resolves expr to a struct-field object, or nil.
func fieldObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	// Qualified references (pkg.Var) land in Uses, not Selections; those
	// are package vars, not fields.
	return nil
}

func inConstructor(funcStack []string) bool {
	for _, name := range funcStack {
		if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
			return true
		}
	}
	return false
}
