package atomicfield_test

import (
	"testing"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis/analysistest"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/atomicfield"
)

func TestMixedAccess(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "atomicdata")
}

func TestCrossPackageFact(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "atomicuser")
}
