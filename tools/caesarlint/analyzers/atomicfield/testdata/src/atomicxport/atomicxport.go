// Package atomicxport exports a field accessed atomically, for the
// cross-package golden test.
package atomicxport

import "sync/atomic"

type Stat struct {
	N int64
}

func (s *Stat) Inc() { atomic.AddInt64(&s.N, 1) }
