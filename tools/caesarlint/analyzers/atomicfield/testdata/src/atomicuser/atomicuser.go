// Package atomicuser is golden input for the atomicfield analyzer's
// cross-package fact flow: Stat.N is accessed atomically in atomicxport,
// so a plain access here must be flagged too.
package atomicuser

import "atomicxport"

func Peek(s *atomicxport.Stat) int64 {
	return s.N // want `field N is accessed via sync/atomic elsewhere`
}
