// Package atomicdata is golden input for the atomicfield analyzer.
package atomicdata

import "sync/atomic"

// Counter mixes atomic and plain access to n — the race the analyzer
// exists to catch.
type Counter struct {
	n     int64
	clean int64 // never touched atomically; plain access is fine
}

// NewCounter is construction: plain writes are allowed here.
func NewCounter() *Counter {
	c := &Counter{n: 0}
	c.n = 1 // constructor context, exempt
	return c
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Racy() int64 {
	c.n++      // want `field n is accessed via sync/atomic elsewhere`
	return c.n // want `field n is accessed via sync/atomic elsewhere`
}

func (c *Counter) Fine() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *Counter) PlainField() int64 {
	c.clean++ // no atomic access anywhere: fine
	return c.clean
}

func (c *Counter) Annotated() int64 {
	// The value is only read after the writers are joined.
	return c.n //caesarlint:allow atomicfield -- read post-join, no concurrent writers
}

// Typed atomics are safe by construction and out of scope.
type Typed struct {
	v atomic.Int64
}

func (t *Typed) Inc() { t.v.Add(1) }
