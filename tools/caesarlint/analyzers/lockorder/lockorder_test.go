package lockorder_test

import (
	"testing"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis/analysistest"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/lockorder"
)

func TestSinglePackage(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockdata")
}

func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "locka")
}
