// Package locka is the caller side of the cross-package lockorder test:
// the table < store order is declared in lockb, and lockb's methods
// carry acquires-facts, so violations here are only visible if both
// kinds of fact crossed the package boundary.
package locka

import (
	"sync"

	"lockb"
)

// holder carries a store-ranked lock of its own; the label binds it into
// the order lockb declared.
type holder struct {
	//caesarlint:lockorder store
	mu sync.Mutex
}

// mine is a local table-ranked lock.
type mine struct {
	//caesarlint:lockorder table
	mu sync.Mutex
}

// DeclaredDirection nests table over store — the declared order; the
// store acquisition arrives via lockb.Store.Get's fact.
func DeclaredDirection(t *lockb.Tbl, s *lockb.Store) {
	m := &mine{}
	m.mu.Lock()
	s.Get()
	m.mu.Unlock()
}

// ReversedViaFact holds a store-ranked lock and calls lockb.Tbl.Grab,
// whose acquires-fact says it takes a table-ranked lock — the reverse
// of the order declared in lockb.
func ReversedViaFact(t *lockb.Tbl) {
	h := &holder{}
	h.mu.Lock()
	t.Grab() // want `acquires "table" while holding "store"`
	h.mu.Unlock()
}

// ReversedViaEdge violates the imported order with purely local locks:
// the edge itself was declared in lockb.
func ReversedViaEdge() {
	h := &holder{}
	m := &mine{}
	h.mu.Lock()
	m.mu.Lock() // want `acquires "table" while holding "store"`
	m.mu.Unlock()
	h.mu.Unlock()
}
