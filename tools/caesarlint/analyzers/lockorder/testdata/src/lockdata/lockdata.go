// Package lockdata is golden input for the lockorder analyzer.
package lockdata

import "sync"

// Node carries two subsystem locks with a declared nesting order.
type Node struct {
	//caesarlint:lockorder gate < table
	gateMu sync.Mutex
	//caesarlint:lockorder table
	tableMu sync.Mutex
	// plain is unlabeled: never tracked.
	plain sync.Mutex
}

// GoodOrder nests in the declared direction: gate, then table.
func (n *Node) GoodOrder() {
	n.gateMu.Lock()
	n.tableMu.Lock()
	n.tableMu.Unlock()
	n.gateMu.Unlock()
}

// BadOrder nests against the declared direction.
func (n *Node) BadOrder() {
	n.tableMu.Lock()
	n.gateMu.Lock() // want `acquires "gate" while holding "table"`
	n.gateMu.Unlock()
	n.tableMu.Unlock()
}

// Sequential acquisition (release before re-acquire) is not nesting.
func (n *Node) Sequential() {
	n.tableMu.Lock()
	n.tableMu.Unlock()
	n.gateMu.Lock()
	n.gateMu.Unlock()
}

// SelfDeadlock re-acquires a held lock.
func (n *Node) SelfDeadlock() {
	n.gateMu.Lock()
	n.gateMu.Lock() // want `nested acquisition of "gate"`
	n.gateMu.Unlock()
	n.gateMu.Unlock()
}

// DeferRelease holds gate to return; taking table under it is the
// declared order.
func (n *Node) DeferRelease() {
	n.gateMu.Lock()
	defer n.gateMu.Unlock()
	n.tableMu.Lock()
	n.tableMu.Unlock()
}

// lockTable is a helper whose acquisition propagates to callers.
func (n *Node) lockTable() {
	n.tableMu.Lock()
}

// ViaHelper acquires table through the helper while holding it already —
// the transitive same-package check.
func (n *Node) ViaHelper() {
	n.tableMu.Lock()
	n.lockTable() // want `nested acquisition of "table"`
	n.tableMu.Unlock()
	n.tableMu.Unlock()
}

// helperBad acquires gate through a helper while holding table.
func (n *Node) helperBad() {
	n.tableMu.Lock()
	n.lockGate() // want `acquires "gate" while holding "table"`
	n.gateMu.Unlock()
	n.tableMu.Unlock()
}

func (n *Node) lockGate() { n.gateMu.Lock() }

// Annotated sites are suppressed.
func (n *Node) Annotated() {
	n.tableMu.Lock()
	//caesarlint:allow lockorder -- test-only reverse nesting, single-threaded caller
	n.gateMu.Lock()
	n.gateMu.Unlock()
	n.tableMu.Unlock()
}

// OtherGoroutine: a go body starts from an empty held-set.
func (n *Node) OtherGoroutine() {
	n.tableMu.Lock()
	go func() {
		n.gateMu.Lock()
		n.gateMu.Unlock()
	}()
	n.tableMu.Unlock()
}

// Unlabeled locks are never tracked.
func (n *Node) Unlabeled() {
	n.plain.Lock()
	n.plain.Unlock()
}

// makeCallback returns a literal that re-locks table; the literal runs in
// its own context (a flush queue, a completion), so the acquisition is
// neither makeCallback's nor its callers' — the commit-table queue
// pattern.
func (n *Node) makeCallback() func() {
	return func() {
		n.tableMu.Lock()
		n.tableMu.Unlock()
	}
}

// QueuesWhileHolding holds table while building the callback: no nesting
// happens until the queue drains it after release.
func (n *Node) QueuesWhileHolding() {
	n.tableMu.Lock()
	_ = n.makeCallback()
	n.tableMu.Unlock()
}
