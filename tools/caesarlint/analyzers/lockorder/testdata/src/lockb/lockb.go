// Package lockb declares the table < store order and exports methods
// whose lock acquisitions flow to callers as facts, for the
// cross-package lockorder test.
package lockb

import "sync"

// Store guards shared state at the bottom of the declared order.
type Store struct {
	//caesarlint:lockorder store
	mu sync.Mutex
}

// Get acquires the store lock (and releases it; the fact records the
// acquisition).
func (s *Store) Get() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Tbl carries the table-ranked lock; a chain attached to a field labels
// the field with the chain's head, so the order declaration lives on the
// first-acquired lock.
type Tbl struct {
	//caesarlint:lockorder table < store
	mu sync.Mutex
}

// Grab acquires the table lock.
func (t *Tbl) Grab() {
	t.mu.Lock()
	defer t.mu.Unlock()
}
