// Package lockorder is an annotation-driven partial-order checker for
// mutex acquisition, encoding the lesson of the PR-5 four-arm
// rebalance-gate×commit-table deadlock: when independent subsystems may
// nest their locks, the safe nesting order is an invariant worth
// declaring once and machine-checking forever, instead of re-deriving it
// from four goroutine dumps.
//
// Annotations:
//
//	//caesarlint:lockorder gate            — labels the annotated mutex
//	                                         field (or package-level var)
//	//caesarlint:lockorder gate < table    — declares order edges; when
//	                                         attached to a mutex field it
//	                                         also labels that field with
//	                                         the chain's first element
//
// Order declarations are global: every declared edge, in any package, is
// published as a fact, and the transitive closure is enforced everywhere
// (standalone runs — the vettool shim sees only the current package's
// declarations). A function that acquires a labeled lock exports an
// "acquires" fact, so a call made while holding lock H into a function
// that takes lock L is checked against the declared order even across
// packages.
//
// The per-function tracking is deliberately simple: statements are
// walked in source order, Lock/RLock on a labeled mutex pushes its
// label, Unlock/RUnlock pops it, `defer x.Unlock()` is a no-op (the lock
// is held to return), `go` bodies and func literals run on other
// stacks/contexts and are analyzed separately from an empty held-set.
// Acquiring label L while holding H is reported when the declared order
// requires L before H, and when L == H (self-deadlock / writer-starved
// recursive read lock). Branch-insensitive linear tracking can misfire
// on lock/unlock splits across if/else arms; annotate those rare sites
// with //caesarlint:allow lockorder -- <why>.
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "checks nested mutex acquisitions against //caesarlint:lockorder declarations",
	Run:  run,
}

// OrderFact is one declared edge (From must be acquired before To),
// published globally.
type OrderFact struct{ From, To string }

// AcquiresFact marks a function that acquires the listed lock labels,
// directly or through same-package calls.
type AcquiresFact struct{ Labels []string }

const directive = "//caesarlint:lockorder"

func run(pass *analysis.Pass) error {
	labels := collectLabels(pass)
	edges := collectEdges(pass)
	for _, e := range edges {
		pass.ExportPackageFact(&OrderFact{From: e[0], To: e[1]})
	}
	// The enforced relation is the transitive closure of every edge
	// declared anywhere in the load.
	before := closure(pass.AllPackageFacts(&OrderFact{}))

	// Pass A: each function's acquired-label set, to a same-package
	// fixpoint, exported as facts for callers here and elsewhere.
	acquires := make(map[*types.Func]map[string]bool)
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			bodies[fn] = fd
			set := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt, *ast.FuncLit:
					// Literals run in their own context (queued
					// callbacks, goroutine bodies) — their acquisitions
					// are not the enclosing function's.
					return false
				case *ast.CallExpr:
					if label, unlock, ok := lockCall(pass, n, labels); ok && !unlock {
						set[label] = true
					}
				}
				return true
			})
			acquires[fn] = set
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.GoStmt, *ast.FuncLit:
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil {
					return true
				}
				for l := range acquires[callee] {
					if !acquires[fn][l] {
						acquires[fn][l] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	for fn, set := range acquires {
		if len(set) > 0 {
			pass.ExportObjectFact(fn, &AcquiresFact{Labels: keys(set)})
		}
	}
	calleeLabels := func(callee *types.Func) []string {
		if set, ok := acquires[callee]; ok {
			return keys(set)
		}
		var fact AcquiresFact
		if pass.ImportObjectFact(callee, &fact) {
			return fact.Labels
		}
		return nil
	}

	// Pass B: linear held-set tracking with violations.
	for _, fd := range bodies {
		checkBody(pass, fd.Body, labels, before, calleeLabels)
	}
	// Func literals get their own empty-held context.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkBody(pass, lit.Body, labels, before, calleeLabels)
			}
			return true
		})
	}
	return nil
}

// checkBody walks one function body in source order, tracking held labels
// and reporting order violations.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, labels map[types.Object]string,
	before map[string]map[string]bool, calleeLabels func(*types.Func) []string) {

	var held []string
	check := func(pos ast.Node, l string) {
		for _, h := range held {
			switch {
			case h == l:
				pass.Reportf(pos.Pos(), "nested acquisition of %q while already held — self-deadlock, or a recursive read lock a pending writer turns into one", l)
			case before[l][h]:
				pass.Reportf(pos.Pos(), "acquires %q while holding %q; the declared lock order is %s < %s", l, h, l, h)
			}
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			// Other goroutine / other invocation context.
			return false
		case *ast.DeferStmt:
			// defer x.Unlock() releases at return; defer of anything
			// else is out of linear order — skip both.
			return false
		case *ast.CallExpr:
			if label, unlock, ok := lockCall(pass, n, labels); ok {
				if unlock {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == label {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				} else {
					check(n, label)
					held = append(held, label)
				}
				return true
			}
			if callee := calleeFunc(pass, n); callee != nil && len(held) > 0 {
				for _, l := range calleeLabels(callee) {
					check(n, l)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// lockCall matches `expr.Lock/RLock/Unlock/RUnlock()` on a labeled
// sync.Mutex/RWMutex field or variable, returning the label and whether
// it releases.
func lockCall(pass *analysis.Pass, call *ast.CallExpr, labels map[types.Object]string) (label string, unlock bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		unlock = false
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return "", false, false
	}
	var obj types.Object
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		if s, okSel := pass.TypesInfo.Selections[x]; okSel && s.Kind() == types.FieldVal {
			obj = s.Obj()
		}
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	}
	if obj == nil {
		return "", false, false
	}
	label, ok = labels[obj]
	return label, unlock, ok
}

// calleeFunc statically resolves a call's target function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// collectLabels maps labeled mutex fields/vars to their declared label.
func collectLabels(pass *analysis.Pass) map[types.Object]string {
	labels := make(map[types.Object]string)
	noteNames := func(names []*ast.Ident, groups ...*ast.CommentGroup) {
		chain := chainFrom(groups...)
		if len(chain) == 0 {
			return
		}
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				labels[obj] = chain[0]
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					noteNames(field.Names, field.Doc, field.Comment)
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						noteNames(vs.Names, n.Doc, vs.Doc, vs.Comment)
					}
				}
			}
			return true
		})
	}
	return labels
}

// collectEdges gathers every a<b pair declared in any comment of the
// package.
func collectEdges(pass *analysis.Pass) [][2]string {
	var edges [][2]string
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				chain := parseChain(c.Text)
				for i := 0; i+1 < len(chain); i++ {
					edges = append(edges, [2]string{chain[i], chain[i+1]})
				}
			}
		}
	}
	return edges
}

// chainFrom extracts the first lockorder chain in the given comment
// groups.
func chainFrom(groups ...*ast.CommentGroup) []string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if chain := parseChain(c.Text); len(chain) > 0 {
				return chain
			}
		}
	}
	return nil
}

// parseChain parses `//caesarlint:lockorder a < b < c` into its labels;
// a single label (no '<') is a pure field label.
func parseChain(text string) []string {
	idx := strings.Index(text, directive)
	if idx < 0 {
		return nil
	}
	rest := text[idx+len(directive):]
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var chain []string
	for _, part := range strings.Split(rest, "<") {
		if part = strings.TrimSpace(part); part != "" {
			chain = append(chain, part)
		}
	}
	return chain
}

// closure computes the transitive must-come-before relation from the
// declared edges: before[a][b] means a must be acquired before b.
func closure(facts []any) map[string]map[string]bool {
	before := make(map[string]map[string]bool)
	add := func(a, b string) {
		if before[a] == nil {
			before[a] = make(map[string]bool)
		}
		before[a][b] = true
	}
	for _, f := range facts {
		of := f.(*OrderFact)
		add(of.From, of.To)
	}
	for changed := true; changed; {
		changed = false
		for a, bs := range before {
			for b := range bs {
				for c := range before[b] {
					if !before[a][c] {
						add(a, c)
						changed = true
					}
				}
			}
		}
	}
	return before
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}
