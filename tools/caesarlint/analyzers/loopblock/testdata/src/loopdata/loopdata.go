// Package loopdata exercises loopblock within one package: handler roots
// via method values and literals, the blocking-primitive denylist,
// channel operations, selects, self-Post, synchronous callbacks, and the
// go-statement and allow-annotation exemptions.
package loopdata

import (
	"os"
	"sync"
	"time"

	"fakeloop"
)

type node struct {
	loop *fakeloop.Loop
	wg   sync.WaitGroup
	acks chan int
	file *os.File
}

// Start hands the loop its handler; the Run argument is the walk root
// even though the call sits under a go statement — that goroutine IS the
// loop.
func Start(n *node) {
	go n.loop.Run(n.handle)
}

func (n *node) handle(ev any) {
	switch ev.(type) {
	case int:
		n.persist()
	case string:
		time.Sleep(time.Millisecond) // want `Sleep sleeps on the wall clock on the event loop`
	}
	n.wg.Wait() // want `Wait joins a WaitGroup on the event loop`
	<-n.acks    // want `channel receive blocks the event loop`
	n.acks <- 1 // want `channel send can block the event loop`
	if !n.loop.TryPost(ev) {
		go n.repost(ev)
	}
	n.loop.Post(ev) // want `blocking Post from the event loop back into itself`
	n.submit(func() {
		n.file.Sync() // want `Sync fsyncs a file on the event loop`
	})
	n.drain()
	n.annotated()
	go func() {
		n.wg.Wait() // off the loop goroutine: fine
	}()
}

// persist is loop-reachable through the handler; the diagnostic lands on
// the blocking site itself.
func (n *node) persist() {
	n.file.Sync() // want `Sync fsyncs a file on the event loop`
}

// submit invokes its callback synchronously, so a literal passed to it
// from the handler is loop-reachable.
func (n *node) submit(cb func()) {
	cb()
}

// drain parks the loop until one of the cases fires.
func (n *node) drain() {
	select { // want `select without a default blocks the event loop`
	case v := <-n.acks:
		_ = v
	case <-n.loop.Stopped():
	}
}

// annotated carries a reviewed suppression.
func (n *node) annotated() {
	//caesarlint:allow loopblock -- inbox capacity is proven larger than in-flight acks
	n.wg.Wait()
}

// repost runs on its own goroutine, where a blocking Post is the correct
// fallback.
func (n *node) repost(ev any) {
	n.loop.Post(ev)
}

// Shutdown is not loop-reachable; blocking here is fine.
func Shutdown(n *node) {
	n.wg.Wait()
	<-n.acks
}
