// Package loopio exports helpers that block — directly or one call deep
// — so their "blocks" facts must cross the package boundary to be seen
// by loopuser's handler.
package loopio

import "os"

// Flush fsyncs and therefore blocks.
func Flush(f *os.File) error {
	return f.Sync()
}

// Enqueue sends on ch and therefore blocks.
func Enqueue(ch chan int, v int) {
	ch <- v
}

// Persist blocks transitively through Flush.
func Persist(f *os.File) {
	_ = Flush(f)
}

// Peek is non-blocking: the select has a default.
func Peek(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
