// Package fakeloop is a stand-in for internal/protocol's event loop so
// the loopblock golden tests can run outside the repo module; the test
// points loopblock.LoopTypes at it.
package fakeloop

// Loop is a single-goroutine mailbox: one Run consumer, many posters.
type Loop struct {
	inbox chan any
	stop  chan struct{}
}

// New returns a loop with a bounded inbox.
func New() *Loop {
	return &Loop{inbox: make(chan any, 8), stop: make(chan struct{})}
}

// Run consumes the inbox until Stop; handle runs on Run's goroutine.
func (l *Loop) Run(handle func(ev any)) {
	for {
		select {
		case ev := <-l.inbox:
			handle(ev)
		case <-l.stop:
			return
		}
	}
}

// Post enqueues ev, blocking while the inbox is full.
func (l *Loop) Post(ev any) {
	select {
	case l.inbox <- ev:
	case <-l.stop:
	}
}

// TryPost enqueues ev only if the inbox has room.
func (l *Loop) TryPost(ev any) bool {
	select {
	case l.inbox <- ev:
		return true
	default:
		return false
	}
}

// Stopped exposes the stop signal for select composition.
func (l *Loop) Stopped() <-chan struct{} {
	return l.stop
}

// Stop shuts the loop down.
func (l *Loop) Stop() {
	close(l.stop)
}
