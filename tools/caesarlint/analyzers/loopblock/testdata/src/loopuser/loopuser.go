// Package loopuser is the caller side of the cross-package loopblock
// test: its handler calls loopio functions whose blocking nature is only
// knowable from the facts loopio exported.
package loopuser

import (
	"os"

	"fakeloop"
	"loopio"
)

type svc struct {
	loop *fakeloop.Loop
	file *os.File
	ch   chan int
}

// Start roots the walk at s.handle.
func Start(s *svc) {
	go s.loop.Run(s.handle)
}

func (s *svc) handle(ev any) {
	loopio.Flush(s.file)    // want `call to Flush on the event loop blocks: it fsyncs a file`
	loopio.Enqueue(s.ch, 1) // want `call to Enqueue on the event loop blocks: it sends on a channel`
	loopio.Persist(s.file)  // want `call to Persist on the event loop blocks: it calls Flush`
	if v, ok := loopio.Peek(s.ch); ok {
		_ = v
	}
}
