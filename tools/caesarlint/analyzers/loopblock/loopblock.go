// Package loopblock guards CAESAR's single-threaded per-group event loop:
// protocol state needs no locking precisely because one goroutine consumes
// the loop's inbox sequentially (protocol.Loop), so anything that parks
// that goroutine — an fsync, a blocking channel operation, a WaitGroup
// join, and above all a blocking Post back into the loop's own full inbox
// — stalls every group event behind it, and in the worst case (the PR-4
// lost-event race: a deferred-apply completion blocking on Post from the
// loop itself) deadlocks the replica outright.
//
// The analyzer finds the handler roots (any function value passed to a
// LoopTypes `Run` method), walks the package-local static call graph from
// them, and flags, on every reachable path:
//
//   - calls to known-blocking primitives (time.Sleep, sync.WaitGroup.Wait,
//     sync.Cond.Wait, os.File.Sync, net dialing),
//   - a blocking Post back into a protocol.Loop (TryPost with a goroutine
//     fallback is the sanctioned pattern),
//   - bare channel sends/receives and default-less selects,
//   - calls into functions — same package or imported — whose bodies were
//     found to block (a "blocks" fact every package exports for its
//     blocking functions; cross-package facts flow in standalone runs).
//
// Code under a `go` statement escapes the loop goroutine and is exempt;
// function literals passed as arguments are treated as reachable, because
// completion callbacks do run synchronously on the loop (the deferred
// applier's pass path). Interface-dispatched calls cannot be resolved
// statically and are not walked — the applier chain behind
// protocol.DeferringApplier exists precisely to make that boundary
// non-blocking. Test files are not analyzed (tests drive loops with
// deliberately synchronous handlers).
//
// Suppress with //caesarlint:allow loopblock -- <why this cannot stall
// the loop>.
package loopblock

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis"
)

// LoopTypes lists the event-loop types whose Run argument is a handler
// root and whose Post is the self-deadlock to catch, as
// "import/path.TypeName". Tests point it at golden packages.
var LoopTypes = []string{
	"github.com/caesar-consensus/caesar/internal/protocol.Loop",
}

// Analyzer is the loopblock check.
var Analyzer = &analysis.Analyzer{
	Name: "loopblock",
	Doc:  "flags blocking operations reachable from protocol.Loop event handlers",
	Run:  run,
}

// BlocksFact marks a function whose body can block the calling
// goroutine, with a human-readable reason.
type BlocksFact struct{ Reason string }

// blocking primitives: package path, receiver type name ("" for plain
// functions), function name.
type primitive struct{ pkg, recv, name string }

var primitives = map[primitive]string{
	{"time", "", "Sleep"}:            "sleeps on the wall clock",
	{"sync", "WaitGroup", "Wait"}:    "joins a WaitGroup",
	{"sync", "Cond", "Wait"}:         "waits on a sync.Cond",
	{"os", "File", "Sync"}:           "fsyncs a file",
	{"net", "", "Dial"}:              "dials the network",
	{"net", "", "DialTimeout"}:       "dials the network",
	{"net", "Dialer", "Dial"}:        "dials the network",
	{"net", "Dialer", "DialContext"}: "dials the network",
}

func run(pass *analysis.Pass) error {
	files := nonTestFiles(pass)

	// Phase 1: every function's direct blocking reason, then a
	// same-package transitive fixpoint, exported as facts.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	blocks := make(map[*types.Func]string)
	blockReason := func(fn *types.Func) string {
		if r, ok := blocks[fn]; ok {
			return r
		}
		var fact BlocksFact
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Reason
		}
		return ""
	}
	for fn, fd := range decls {
		if reason := directBlockReason(pass, fd.Body); reason != "" {
			blocks[fn] = reason
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if blocks[fn] != "" {
				continue
			}
			callee, reason := firstBlockingCall(pass, fd.Body, blockReason)
			if callee != nil {
				blocks[fn] = fmt.Sprintf("calls %s, which %s", callee.Name(), reason)
				changed = true
			}
		}
	}
	for fn, reason := range blocks {
		pass.ExportObjectFact(fn, &BlocksFact{Reason: reason})
	}

	// Phase 2: walk the graph from the handler roots and report.
	w := &walker{
		pass:        pass,
		decls:       decls,
		blockReason: blockReason,
		visited:     make(map[*types.Func]bool),
		litVisited:  make(map[*ast.FuncLit]bool),
		reported:    make(map[string]bool),
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isLoopMethod(pass, call, "Run") {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			switch arg := call.Args[0].(type) {
			case *ast.FuncLit:
				w.walkLit(arg)
			default:
				if fn := resolveFuncValue(pass, arg); fn != nil {
					w.walkFunc(fn)
				}
			}
			return true
		})
	}
	return nil
}

// walker performs the reachability walk and reporting.
type walker struct {
	pass        *analysis.Pass
	decls       map[*types.Func]*ast.FuncDecl
	blockReason func(*types.Func) string
	visited     map[*types.Func]bool
	litVisited  map[*ast.FuncLit]bool
	reported    map[string]bool
}

func (w *walker) walkFunc(fn *types.Func) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	if fd, ok := w.decls[fn]; ok {
		w.walkBody(fd.Body)
	}
}

func (w *walker) walkLit(lit *ast.FuncLit) {
	if w.litVisited[lit] {
		return
	}
	w.litVisited[lit] = true
	w.walkBody(lit.Body)
}

func (w *walker) reportf(n ast.Node, format string, args ...any) {
	key := w.pass.Fset.Position(n.Pos()).String()
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Reportf(n.Pos(), format, args...)
}

// walkBody scans one reachable body. Channel operations under a select
// with a default clause are non-blocking and skipped; go statements run
// on another goroutine and end the walk.
func (w *walker) walkBody(body ast.Node) {
	if body == nil {
		return
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			// Declared here; walked where it is passed or called.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				w.reportf(n, "select without a default blocks the event loop: no group event is processed until a case fires — restructure, or annotate //caesarlint:allow loopblock -- <why>")
			}
			// Clause bodies run after the (possibly non-)blocking comm;
			// walk them, but not the comm operations themselves.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, walk)
					}
				}
			}
			return false
		case *ast.SendStmt:
			w.reportf(n, "channel send can block the event loop (unbounded wait if no receiver is ready) — use a select with default, buffer by construction, or annotate //caesarlint:allow loopblock -- <why>")
			return true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				w.reportf(n, "channel receive blocks the event loop until a sender arrives — move it off the loop or annotate //caesarlint:allow loopblock -- <why>")
			}
			return true
		case *ast.CallExpr:
			w.checkCall(n)
			// Function literals passed as arguments may be invoked
			// synchronously by the callee (completion callbacks on the
			// pass path); treat them as reachable.
			for _, arg := range n.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					w.walkLit(lit)
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (w *walker) checkCall(call *ast.CallExpr) {
	if isLoopMethod(w.pass, call, "Post") {
		w.reportf(call, "blocking Post from the event loop back into itself deadlocks the replica when the inbox is full (the PR-4 lost-event class) — use TryPost with a goroutine fallback, or annotate //caesarlint:allow loopblock -- <why>")
		return
	}
	fn := calleeFunc(w.pass, call)
	if fn == nil {
		return
	}
	if reason, ok := primitives[primitiveOf(fn)]; ok {
		w.reportf(call, "%s %s on the event loop: the single-threaded loop processes nothing until it returns — move it off the loop or annotate //caesarlint:allow loopblock -- <why>", fn.Name(), reason)
		return
	}
	if _, local := w.decls[fn]; local {
		w.walkFunc(fn)
		return
	}
	if reason := w.blockReason(fn); reason != "" {
		w.reportf(call, "call to %s on the event loop blocks: it %s — move it off the loop or annotate //caesarlint:allow loopblock -- <why>", fn.Name(), reason)
	}
}

// directBlockReason reports why a body blocks directly, or "".
func directBlockReason(pass *analysis.Pass, body ast.Node) string {
	reason := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				reason = "waits in a select with no default"
				return false
			}
			// Non-blocking select; only clause bodies matter.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, walk)
					}
				}
			}
			return false
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				reason = "receives from a channel"
			}
			return true
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				if r, ok := primitives[primitiveOf(fn)]; ok {
					reason = r
					return false
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	return reason
}

// firstBlockingCall finds a static call (outside go statements and
// function literals) to a function already known — locally or via an
// imported fact — to block.
func firstBlockingCall(pass *analysis.Pass, body ast.Node, reasonOf func(*types.Func) string) (*types.Func, string) {
	var foundFn *types.Func
	var foundReason string
	ast.Inspect(body, func(n ast.Node) bool {
		if foundFn != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				if r := reasonOf(fn); r != "" {
					foundFn, foundReason = fn, r
					return false
				}
			}
		}
		return true
	})
	return foundFn, foundReason
}

// isLoopMethod reports whether call invokes method `name` on a receiver
// whose (pointer-stripped) type is one of LoopTypes.
func isLoopMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, lt := range LoopTypes {
		if full == lt {
			return true
		}
	}
	return false
}

// resolveFuncValue resolves a function-valued argument (method value or
// plain function reference) to its *types.Func.
func resolveFuncValue(pass *analysis.Pass, arg ast.Expr) *types.Func {
	switch arg := arg.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[arg].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[arg.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeFunc statically resolves a call target.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// primitiveOf describes fn for the primitives table.
func primitiveOf(fn *types.Func) primitive {
	if fn.Pkg() == nil {
		return primitive{}
	}
	p := primitive{pkg: fn.Pkg().Path(), name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			p.recv = named.Obj().Name()
		}
	}
	return p
}

func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}
