package loopblock_test

import (
	"testing"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis/analysistest"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/loopblock"
)

// withFakeLoop retargets the analyzer at the golden stand-in loop type
// for the duration of one test.
func withFakeLoop(t *testing.T) {
	t.Helper()
	saved := loopblock.LoopTypes
	loopblock.LoopTypes = []string{"fakeloop.Loop"}
	t.Cleanup(func() { loopblock.LoopTypes = saved })
}

func TestHandlerReachability(t *testing.T) {
	withFakeLoop(t)
	analysistest.Run(t, "testdata", loopblock.Analyzer, "loopdata")
}

func TestCrossPackageBlocksFacts(t *testing.T) {
	withFakeLoop(t)
	analysistest.Run(t, "testdata", loopblock.Analyzer, "loopuser")
}
