// Package offpath is golden input for the wallclock analyzer: its import
// path matches no consensus-path suffix, so wall-clock calls are fine.
package offpath

import "time"

func measure() time.Duration {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
