// Package caesar is golden input for the wallclock analyzer: its import
// path ends in internal/caesar, so it is on the consensus path.
package caesar

import "time"

// Config mimics the injectable-clock idiom.
type Config struct {
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Now == nil {
		// Referencing time.Now as a value is the sanctioned injection
		// default; only calls are flagged.
		c.Now = time.Now
	}
	return c
}

func stampsFromWallClock(c Config) time.Duration {
	start := time.Now()          // want `time\.Now called on the consensus path`
	time.Sleep(time.Millisecond) // want `time\.Sleep called on the consensus path`
	return time.Since(start)     // want `time\.Since called on the consensus path`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `time\.Sleep called on the consensus path`
}

func timers() {
	t := time.NewTimer(time.Second) // want `time\.NewTimer called on the consensus path`
	defer t.Stop()
	tick := time.NewTicker(time.Second) // want `time\.NewTicker called on the consensus path`
	defer tick.Stop()
	<-time.After(time.Second) // want `time\.After called on the consensus path`
}

func annotated() {
	// The real-time ticker drives liveness, not correctness; tests tick
	// the fake clock by posting events directly.
	//caesarlint:allow wallclock -- liveness ticker runs on real time by design
	t := time.NewTicker(time.Second)
	t.Stop()
	_ = time.Now() //caesarlint:allow wallclock -- trailing form, also fine
}

func annotatedWithoutRationale() {
	//caesarlint:allow wallclock
	time.Sleep(time.Millisecond) // want `needs a rationale`
}

func injected(c Config) time.Time {
	return c.Now() // the sanctioned path: never flagged
}

func arithmetic(c Config, deadline time.Time) bool {
	// Methods named like forbidden functions (After, Sub) on time.Time
	// values are pure arithmetic on an already-obtained instant.
	now := c.Now()
	if deadline.After(now) {
		return false
	}
	return now.Sub(deadline) > time.Second
}
