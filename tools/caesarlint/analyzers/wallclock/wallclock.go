// Package wallclock forbids direct wall-clock calls on the consensus
// path. Every timeout, deadline and latency stamp in the consensus-path
// packages must flow through the injected clock (caesar.Config.Now,
// xshard.TableConfig.Now, rebalance.Config.Now, wal.Options.Now,
// stack.Config.Now): the restart conformance tests and the fake-clock
// harness drive replicas under simulated time, and a single time.Now
// smuggled onto the path measures (or times out) against a clock nothing
// else advances — the exact bug fixed at internal/caesar/delivery.go,
// where client-ack latency was stamped from the wall clock while the
// timeouts it was compared against ran on the injected one.
//
// Referencing a time function as a value (`cfg.Now = time.Now`, the
// injection default idiom) is deliberately not flagged: defaults are the
// one sanctioned place the wall clock enters, and they are what the
// analyzer pushes call sites toward. Test files are exempt.
//
// Suppress a finding with a trailing or preceding
// `//caesarlint:allow wallclock -- <why real time is correct here>`.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis"
)

// PathSuffixes lists the import-path suffixes the check applies to — the
// packages whose timers and stamps must run on the injected clock. The
// caesarlint main binds a flag to it; tests point it at golden packages.
var PathSuffixes = []string{
	"internal/caesar",
	"internal/xshard",
	"internal/rebalance",
	"internal/wal",
	"internal/reads",
	"internal/protocol",
	"internal/flight",
	"internal/contend",
}

// forbidden is the set of time-package functions that read or schedule
// against the wall clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbids direct time.Now/Sleep/After/Timer calls in consensus-path packages where an injectable clock exists",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pathApplies(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbidden[fn.Name()] {
				return true
			}
			// Methods sharing a forbidden name (t.After, t.Sub on a
			// time.Time value) are pure arithmetic, not clock reads.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s called on the consensus path: use the injected clock (Config.Now) so fake-clock tests drive it, or annotate //caesarlint:allow wallclock -- <why>",
				fn.Name())
			return true
		})
	}
	return nil
}

func pathApplies(path string) bool {
	for _, s := range PathSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
