package wallclock_test

import (
	"testing"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis/analysistest"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/wallclock"
)

func TestConsensusPathFindings(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "internal/caesar")
}

func TestOffPathIsClean(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "offpath")
}
