// Command caesarlint runs the repo's concurrency & determinism
// analyzers (wallclock, loopblock, lockorder, atomicfield) in one of two
// modes:
//
// Standalone (authoritative — whole-repo load, cross-package facts):
//
//	caesarlint [-dir .] [-tests=true] [packages ...]
//
// Vet tool (per-compilation-unit, no cross-package facts — a strict
// subset of the standalone findings):
//
//	go vet -vettool=$(which caesarlint) ./...
//
// Exit codes: 0 clean, 1 operational failure, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/atomicfield"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/lockorder"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/loopblock"
	"github.com/caesar-consensus/caesar/tools/caesarlint/analyzers/wallclock"
	"github.com/caesar-consensus/caesar/tools/caesarlint/internal/unitchecker"
)

var analyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	loopblock.Analyzer,
	lockorder.Analyzer,
	atomicfield.Analyzer,
}

func main() {
	args := os.Args[1:]

	// The `go vet -vettool` protocol: a single *.cfg argument runs one
	// compilation unit; -V=full and -flags are capability queries cmd/go
	// issues before that.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitchecker.Run(args[0], analyzers))
	}
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	fs := flag.NewFlagSet("caesarlint", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	tests := fs.Bool("tests", true, "also analyze _test.go files and test packages")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: caesarlint [-dir .] [-tests=true] [packages ...]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, *dir, patterns, *tests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caesarlint: %v\n", err)
		os.Exit(1)
	}
	findings, err := analysis.RunAll(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caesarlint: %v\n", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// printVersion answers cmd/go's -V=full probe, which wants a stable
// content-derived identity line for build caching.
func printVersion() {
	name := filepath.Base(os.Args[0])
	var sum [sha256.Size]byte
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, sum)
}
