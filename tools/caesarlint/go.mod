module github.com/caesar-consensus/caesar/tools/caesarlint

go 1.21
