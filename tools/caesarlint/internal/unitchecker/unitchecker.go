// Package unitchecker adapts the caesarlint analyzers to the protocol
// cmd/go speaks to `go vet -vettool` binaries: the driver invokes the
// tool once per compilation unit with a single *.cfg JSON argument
// naming the unit's files and the export data of everything it imports.
//
// The shim type-checks the unit against that export data and runs the
// analyzers on it in isolation. Facts do NOT cross units here — each
// `go vet` process starts empty, and the vetx file this shim writes is
// an empty placeholder — so cross-package findings (an imported order
// edge, a callee's acquires/blocks fact) are only surfaced by the
// standalone runner, which loads the whole repo into one process. The
// standalone run is therefore the authoritative sweep and a strict
// superset: a repo clean under `caesarlint ./...` is clean under
// `go vet -vettool` too.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/caesar-consensus/caesar/tools/caesarlint/analysis"
)

// Config is the subset of the JSON configuration cmd/go writes for vet
// tools that this shim consumes.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Run analyzes the unit described by configFile and returns the process
// exit code: 0 clean, 1 operational failure, 2 diagnostics reported.
func Run(configFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(configFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "caesarlint: parsing %s: %v\n", configFile, err)
		return 1
	}
	// cmd/go requires the facts file to exist after the run even though
	// this shim transmits none.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}
	if cfg.VetxOnly {
		// The unit is only needed as a dependency; with no facts to
		// compute there is nothing to do.
		if err := writeVetx(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailure(cfg, writeVetx, err)
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go compiled for the
	// unit's dependencies; ImportMap translates source import paths
	// (vendoring, test variants) to the canonical package paths keying
	// PackageFile.
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp}
	if v := cfg.GoVersion; v != "" && strings.Count(v, ".") <= 1 {
		tconf.GoVersion = v
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailure(cfg, writeVetx, err)
	}

	pkg := &analysis.Package{Path: cfg.ImportPath, Files: files, Types: tpkg, Info: info}
	findings, err := analysis.RunAll(fset, []*analysis.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeVetx(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// typecheckFailure honors SucceedOnTypecheckFailure, under which cmd/go
// expects silence and success (it reports the build error itself).
func typecheckFailure(cfg Config, writeVetx func() error, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		if werr := writeVetx(); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			return 1
		}
		return 0
	}
	fmt.Fprintln(os.Stderr, err)
	return 1
}
