package caesar_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	caesar "github.com/caesar-consensus/caesar"
)

// TestResizeQuiescent grows and shrinks a quiet cluster and checks that
// every key stays readable through consensus from every node afterwards
// — with the background state auditor running across both epoch
// transitions, which must prove equality and never a false divergence.
func TestResizeQuiescent(t *testing.T) {
	var fp falsePositives
	cluster, err := caesar.NewLocalCluster(3, caesar.WithShards(2),
		caesar.WithAuditInterval(auditEvery),
		caesar.WithNodeOptions(fp.guard(caesar.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const keys = 40
	for i := 0; i < keys; i++ {
		if _, err := cluster.Node(i%3).Propose(ctx, caesar.Put(key(i), []byte(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	if err := cluster.Node(0).Resize(ctx, 4); err != nil {
		t.Fatalf("resize 2→4: %v", err)
	}
	if got := cluster.Node(0).Shards(); got != 4 {
		t.Fatalf("shards after grow = %d, want 4", got)
	}
	checkAllKeys(ctx, t, cluster, keys, "after grow")

	// Write under the new epoch, then shrink back.
	for i := 0; i < keys; i++ {
		if _, err := cluster.Node(i%3).Propose(ctx, caesar.Put(key(i), []byte(fmt.Sprintf("w%d", i)))); err != nil {
			t.Fatalf("rewrite %d: %v", i, err)
		}
	}
	if err := cluster.Node(1).Resize(ctx, 2); err != nil {
		t.Fatalf("resize 4→2: %v", err)
	}
	for i := 0; i < keys; i++ {
		v, err := cluster.Node(i%3).Propose(ctx, caesar.Get(key(i)))
		if err != nil {
			t.Fatalf("get %d after shrink: %v", i, err)
		}
		if string(v) != fmt.Sprintf("w%d", i) {
			t.Fatalf("key %d after shrink = %q, want %q", i, v, fmt.Sprintf("w%d", i))
		}
	}
	requireCleanAudit(t, cluster, &fp)
}

func key(i int) string { return fmt.Sprintf("user/%d", i) }

func checkAllKeys(ctx context.Context, t *testing.T, cluster *caesar.Cluster, keys int, when string) {
	t.Helper()
	for i := 0; i < keys; i++ {
		v, err := cluster.Node(i%3).Propose(ctx, caesar.Get(key(i)))
		if err != nil {
			t.Fatalf("get %d %s: %v", i, when, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d %s = %q, want %q", i, when, v, fmt.Sprintf("v%d", i))
		}
	}
}

// TestResizeUnderLoad fires a mid-stream grow while concurrent clients
// increment disjoint counters and run cross-group transfer transactions
// that straddle the marker, then asserts conformance on every replica: no
// increment lost or duplicated (counter totals match the acknowledged
// count exactly) and transfers atomic (the transfer invariant holds).
func TestResizeUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("resize-under-load conformance is a long test")
	}
	testResizeUnderLoad(t, 2, 4)
}

// TestShrinkUnderLoad is the 4→2 variant.
func TestShrinkUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("resize-under-load conformance is a long test")
	}
	testResizeUnderLoad(t, 4, 2)
}

func testResizeUnderLoad(t *testing.T, from, to int) {
	var fp falsePositives
	cluster, err := caesar.NewLocalCluster(3, caesar.WithShards(from),
		caesar.WithAuditInterval(auditEvery),
		caesar.WithNodeOptions(fp.guard(caesar.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const (
		counters  = 24 // spread over every group of both epochs
		workers   = 12
		transfers = 6 // transfer-pair workers
	)
	var (
		acked [counters]int64 // acknowledged increments per counter
		txOK  atomic.Int64
		stop  atomic.Bool
		wg    sync.WaitGroup
	)

	// Increment workers: each hammers its own counter through a fixed
	// node; every acknowledged Add must survive the resize exactly once.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := cluster.Node(w % 3)
			c := w % counters
			for !stop.Load() {
				if _, err := node.Propose(ctx, caesar.Add(cnt(c), 1)); err == nil {
					atomic.AddInt64(&acked[c], 1)
				}
			}
		}(w)
	}
	// Transfer workers: two-key transactions crossing groups; the sum of
	// each pair must stay zero on every replica whatever epoch each piece
	// landed in.
	for w := 0; w < transfers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := cluster.Node(w % 3)
			a, b := pair(w)
			for !stop.Load() {
				err := node.ProposeTx(ctx, []caesar.Command{
					caesar.Add(a, 1),
					caesar.Add(b, -1),
				})
				if err == nil {
					txOK.Add(1)
				} else if !errors.Is(err, caesar.ErrTxAborted) && ctx.Err() == nil {
					// Unknown-outcome errors would break exact
					// accounting; with no crashes in this test they
					// should not occur.
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond)
	if err := cluster.Node(0).Resize(ctx, to); err != nil {
		t.Fatalf("resize %d→%d: %v", from, to, err)
	}
	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: a consensus read per counter per node flushes deliveries,
	// then replicas must agree exactly.
	for c := 0; c < counters; c++ {
		want := atomic.LoadInt64(&acked[c])
		for n := 0; n < 3; n++ {
			v, err := cluster.Node(n).Propose(ctx, caesar.Get(cnt(c)))
			if err != nil {
				t.Fatalf("get counter %d on node %d: %v", c, n, err)
			}
			if got := caesar.DecodeInt(v); got != want {
				t.Fatalf("counter %d on node %d = %d, want %d (lost or duplicated increment across resize)", c, n, got, want)
			}
		}
	}
	var sum int64
	for w := 0; w < transfers; w++ {
		a, b := pair(w)
		for n := 0; n < 3; n++ {
			va, err := cluster.Node(n).Propose(ctx, caesar.Get(a))
			if err != nil {
				t.Fatal(err)
			}
			vb, err := cluster.Node(n).Propose(ctx, caesar.Get(b))
			if err != nil {
				t.Fatal(err)
			}
			sum += caesar.DecodeInt(va) + caesar.DecodeInt(vb)
		}
	}
	if sum != 0 {
		t.Fatalf("transfer invariant broken across resize: residue %d (a transaction straddling the marker applied partially)", sum)
	}
	if txOK.Load() == 0 {
		t.Log("warning: no transfer committed during the window")
	}
	if got := cluster.Node(2).Shards(); got != to {
		t.Fatalf("shards = %d, want %d", got, to)
	}
	requireCleanAudit(t, cluster, &fp)
}

func cnt(i int) string { return fmt.Sprintf("counter/%d", i) }

func pair(w int) (string, string) {
	return fmt.Sprintf("acct/a%d", w), fmt.Sprintf("acct/b%d", w)
}
