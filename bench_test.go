package caesar_test

// One benchmark per table/figure of the paper's evaluation (§VI), plus
// ablation benches for the design decisions DESIGN.md calls out. Each
// bench runs a miniature of the corresponding experiment on the simulated
// five-site WAN and reports paper-unit metrics:
//
//	paper_ms_<site>   mean latency at a site, rescaled to paper milliseconds
//	cmds_per_s        cluster throughput as measured
//	slow_path_pct     share of decisions taken on the slow path
//
// The experiment itself runs once per benchmark (wall-clock driven); the
// b.N loop is a no-op, so plain `go test -bench=.` and `-benchtime=1x`
// report the same metrics. Full-scale runs: cmd/caesar-bench.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/caesar-consensus/caesar/internal/harness"
	"github.com/caesar-consensus/caesar/internal/memnet"
)

// benchCache memoises experiment results per benchmark name: the testing
// framework re-invokes a benchmark body while scaling b.N, and the
// wall-clock experiment must only run once regardless.
var (
	benchCacheMu sync.Mutex
	benchCache   = map[string]harness.Result{}
)

func runCached(b *testing.B, opts harness.Options) harness.Result {
	b.Helper()
	return runCachedAs(b, b.Name(), opts)
}

// runCachedAs memoises under an explicit key, letting one benchmark reuse
// another's run (the sharding speedup baseline).
func runCachedAs(b *testing.B, key string, opts harness.Options) harness.Result {
	b.Helper()
	benchCacheMu.Lock()
	defer benchCacheMu.Unlock()
	if res, ok := benchCache[key]; ok {
		return res
	}
	res := harness.Run(opts)
	benchCache[key] = res
	return res
}

// benchOpts is the miniature configuration used by every figure bench.
func benchOpts(p harness.Protocol, conflict float64) harness.Options {
	return harness.Options{
		Protocol:       p,
		Scale:          0.02,
		ConflictPct:    conflict,
		ClientsPerNode: 8,
		Warmup:         200 * time.Millisecond,
		Duration:       500 * time.Millisecond,
		Seed:           42,
	}
}

// reportSites attaches per-site latency metrics.
func reportSites(b *testing.B, res harness.Result) {
	for i, s := range res.Sites {
		b.ReportMetric(float64(s.MeanLatency)/float64(time.Millisecond),
			"paper_ms_"+memnet.SiteShort[i%5])
	}
	b.ReportMetric(res.Throughput, "cmds_per_s")
	b.ReportMetric(res.SlowRatio()*100, "slow_path_pct")
}

// spin keeps the benchmark contract (b.N iterations) without re-running
// the wall-clock experiment.
func spin(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkFigure6 reproduces Fig 6: per-site mean latency vs conflict %
// for CAESAR, EPaxos and M2Paxos (batching off).
func BenchmarkFigure6(b *testing.B) {
	for _, proto := range []harness.Protocol{harness.Caesar, harness.EPaxos, harness.M2Paxos} {
		for _, conflict := range harness.ConflictLevels {
			b.Run(fmt.Sprintf("%s/conflict=%v", proto, conflict), func(b *testing.B) {
				res := runCached(b, benchOpts(proto, conflict))
				reportSites(b, res)
				spin(b)
			})
		}
	}
}

// BenchmarkFigure7 reproduces Fig 7: per-site latency of Multi-Paxos with
// a close (Ireland) and faraway (Mumbai) leader, Mencius, and CAESAR at 0%.
func BenchmarkFigure7(b *testing.B) {
	for _, proto := range []harness.Protocol{
		harness.MultiPaxosIR, harness.MultiPaxosIN, harness.Mencius, harness.Caesar,
	} {
		b.Run(string(proto), func(b *testing.B) {
			res := runCached(b, benchOpts(proto, 0))
			reportSites(b, res)
			spin(b)
		})
	}
}

// BenchmarkFigure8 reproduces Fig 8: latency per site while growing the
// number of connected clients (10% conflicts).
func BenchmarkFigure8(b *testing.B) {
	for _, proto := range []harness.Protocol{harness.Caesar, harness.EPaxos, harness.M2Paxos} {
		for _, clients := range []int{5, 50, 500, 1000} {
			b.Run(fmt.Sprintf("%s/clients=%d", proto, clients), func(b *testing.B) {
				o := benchOpts(proto, 10)
				o.ClientsPerNode = clients / 5
				if o.ClientsPerNode == 0 {
					o.ClientsPerNode = 1
				}
				res := runCached(b, o)
				reportSites(b, res)
				spin(b)
			})
		}
	}
}

// BenchmarkFigure9 reproduces Fig 9: throughput vs conflict % with
// batching off and on. Conflict-oblivious protocols report only the 0%
// point, as in the paper.
func BenchmarkFigure9(b *testing.B) {
	for _, batching := range []bool{false, true} {
		name := "batching=off"
		if batching {
			name = "batching=on"
		}
		protos := []harness.Protocol{
			harness.EPaxos, harness.Caesar, harness.M2Paxos,
			harness.MultiPaxosIR, harness.MultiPaxosIN,
		}
		if !batching {
			protos = append(protos, harness.Mencius)
		}
		for _, proto := range protos {
			conflictOblivious := proto == harness.Mencius ||
				proto == harness.MultiPaxosIR || proto == harness.MultiPaxosIN
			for _, conflict := range harness.ConflictLevels {
				if conflictOblivious && conflict != 0 {
					continue
				}
				b.Run(fmt.Sprintf("%s/%s/conflict=%v", name, proto, conflict), func(b *testing.B) {
					o := benchOpts(proto, conflict)
					o.Batching = batching
					o.ClientsPerNode = 80 // saturate: Fig 9 is a throughput experiment
					res := runCached(b, o)
					b.ReportMetric(res.Throughput, "cmds_per_s")
					spin(b)
				})
			}
		}
	}
}

// BenchmarkFigure10 reproduces Fig 10: % of commands decided on the slow
// path for EPaxos vs CAESAR across conflict levels.
func BenchmarkFigure10(b *testing.B) {
	for _, proto := range []harness.Protocol{harness.EPaxos, harness.Caesar} {
		for _, conflict := range harness.ConflictLevels {
			b.Run(fmt.Sprintf("%s/conflict=%v", proto, conflict), func(b *testing.B) {
				o := benchOpts(proto, conflict)
				o.ClientsPerNode = 40 // the paper derives Fig 10 from the loaded runs
				res := runCached(b, o)
				b.ReportMetric(res.SlowRatio()*100, "slow_path_pct")
				spin(b)
			})
		}
	}
}

// BenchmarkFigure11a reproduces Fig 11a: the proportion of CAESAR latency
// spent per ordering phase (propose / retry / deliver).
func BenchmarkFigure11a(b *testing.B) {
	for _, conflict := range harness.ConflictLevels {
		b.Run(fmt.Sprintf("conflict=%v", conflict), func(b *testing.B) {
			o := benchOpts(harness.Caesar, conflict)
			o.ClientsPerNode = 40
			res := runCached(b, o)
			b.ReportMetric(res.ProposeFrac*100, "propose_pct")
			b.ReportMetric(res.RetryFrac*100, "retry_pct")
			b.ReportMetric(res.DeliverFrac*100, "deliver_pct")
			spin(b)
		})
	}
}

// BenchmarkFigure11b reproduces Fig 11b: mean wait-condition time per site
// for 2/10/30% conflicts.
func BenchmarkFigure11b(b *testing.B) {
	for _, conflict := range harness.Figure11bConflicts {
		b.Run(fmt.Sprintf("conflict=%v", conflict), func(b *testing.B) {
			o := benchOpts(harness.Caesar, conflict)
			o.ClientsPerNode = 40
			res := runCached(b, o)
			for i, s := range res.Sites {
				b.ReportMetric(float64(s.MeanWait)/float64(time.Millisecond),
					"wait_ms_"+memnet.SiteShort[i%5])
			}
			spin(b)
		})
	}
}

// BenchmarkFigure12 reproduces Fig 12: throughput with one node crashing
// mid-run; the min/recovered throughput ratio summarises the dip.
func BenchmarkFigure12(b *testing.B) {
	for _, proto := range []harness.Protocol{harness.EPaxos, harness.Caesar} {
		b.Run(string(proto), func(b *testing.B) {
			o := benchOpts(proto, 2)
			o.ClientsPerNode = 20
			o.Duration = 4 * time.Second
			o.CrashNode = 4
			o.CrashAfter = 1500 * time.Millisecond
			o.SampleInterval = 250 * time.Millisecond
			res := runCached(b, o)
			b.ReportMetric(res.Throughput, "cmds_per_s")
			var before, after float64
			var nb, na int
			for _, p := range res.Timeline {
				if p.At < o.CrashAfter {
					before += p.Tps
					nb++
				} else if p.At > o.CrashAfter+time.Second {
					after += p.Tps
					na++
				}
			}
			if nb > 0 {
				b.ReportMetric(before/float64(nb), "tps_before_crash")
			}
			if na > 0 {
				b.ReportMetric(after/float64(na), "tps_after_recovery")
			}
			spin(b)
		})
	}
}

// BenchmarkSharding measures the sharded deployment (internal/shard): the
// aggregate throughput of 1, 2 and 4 consensus groups per node under the
// pipeline-bound configuration of harness.ShardingOpts, at the paper's low
// (2%) conflict rate. speedup_vs_1shard is the headline metric: execution
// within a group is serial, so it should approach the shard count.
func BenchmarkSharding(b *testing.B) {
	shardingOpts := func(shards int) harness.Options {
		base := harness.Options{
			Duration: 700 * time.Millisecond,
			Warmup:   250 * time.Millisecond,
			Seed:     42,
		}
		return harness.ShardingOpts(base, harness.Caesar, 2, shards)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			res := runCachedAs(b, fmt.Sprintf("sharding/%d", shards), shardingOpts(shards))
			base := runCachedAs(b, "sharding/1", shardingOpts(1))
			b.ReportMetric(res.Throughput, "cmds_per_s")
			if base.Throughput > 0 {
				b.ReportMetric(res.Throughput/base.Throughput, "speedup_vs_1shard")
			}
			spin(b)
		})
	}
}

// BenchmarkAblationWaitCondition quantifies §IV-A: CAESAR with the wait
// condition disabled (blocked proposals are rejected instead) takes far
// more slow decisions under conflicts.
func BenchmarkAblationWaitCondition(b *testing.B) {
	for _, proto := range []harness.Protocol{harness.Caesar, harness.CaesarNoWait} {
		for _, conflict := range []float64{10, 30} {
			b.Run(fmt.Sprintf("%s/conflict=%v", proto, conflict), func(b *testing.B) {
				res := runCached(b, benchOpts(proto, conflict))
				b.ReportMetric(res.SlowRatio()*100, "slow_path_pct")
				b.ReportMetric(float64(res.Sites[0].MeanLatency)/float64(time.Millisecond), "paper_ms_VA")
				spin(b)
			})
		}
	}
}

// BenchmarkAblationQuorumSize quantifies the ⌈3N/4⌉ fast-quorum cost
// (§VI: CAESAR contacts one node more than EPaxos at N=5) by varying the
// cluster size.
func BenchmarkAblationQuorumSize(b *testing.B) {
	for _, nodes := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			o := benchOpts(harness.Caesar, 10)
			o.Nodes = nodes
			res := runCached(b, o)
			b.ReportMetric(float64(res.Sites[0].MeanLatency)/float64(time.Millisecond), "paper_ms_site0")
			b.ReportMetric(res.Throughput, "cmds_per_s")
			spin(b)
		})
	}
}
