package caesar

import (
	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/trace"
)

// Trace is a bounded in-memory ring of protocol events. Attach one to a
// node (Options.Trace) or a whole cluster (WithTrace) and every layer of
// the stack records its milestones into it: proposal, acceptor waits,
// retries, stability, delivery, WAL fsync, cross-shard hold/execute/
// abort, read-fence park/release, resize fences and the final client
// acknowledgement. The ring is fixed-size and overwrites its oldest
// events, so it is safe to leave enabled in production; recording is a
// single short critical section per event.
//
// A shared Trace across a cluster's nodes is fine — every event carries
// its node of origin.
type Trace struct {
	ring *trace.Ring
}

// NewTrace returns a trace buffer holding up to capacity events;
// capacity <= 0 selects the default (4096).
func NewTrace(capacity int) *Trace {
	return &Trace{ring: trace.NewRing(capacity)}
}

// inner unwraps the ring; nil-safe so option plumbing needs no guards.
func (t *Trace) inner() *trace.Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Len returns the number of events currently buffered.
func (t *Trace) Len() int { return t.inner().Len() }

// Dump renders every buffered event oldest-first, one per line.
func (t *Trace) Dump() string {
	return trace.Format(t.inner().Snapshot())
}

// CommandHistory renders the buffered events of one command — identified
// by its proposing node and per-node sequence number, as printed in trace
// lines and the slow-command log — oldest-first, one per line. The result
// is empty when no event of that command is (still) buffered.
func (t *Trace) CommandHistory(node int, seq uint64) string {
	id := command.ID{Node: timestamp.NodeID(node), Seq: seq}
	return trace.Format(t.inner().CommandHistory(id))
}
