package caesar_test

// Conformance tests of the local read path (internal/reads, Node.Read /
// Node.ReadTx): concurrent readers and writers — plus one mid-run resize —
// must observe per-key monotonic, read-your-writes-consistent values, and
// cross-shard snapshot reads must never observe half of an atomic
// transaction. Run under -race in CI.

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	caesar "github.com/caesar-consensus/caesar"
)

func encCounter(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func decCounter(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// TestReadQuiescent checks the basics on a quiet sharded cluster: local
// reads see completed writes from any node, absent keys read nil, and a
// ReadTx snapshot spans groups.
func TestReadQuiescent(t *testing.T) {
	var fp falsePositives
	cluster, err := caesar.NewLocalCluster(3, caesar.WithShards(4),
		caesar.WithAuditInterval(auditEvery),
		caesar.WithNodeOptions(fp.guard(caesar.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 20; i++ {
		if _, err := cluster.Node(i%3).Propose(ctx, caesar.Put(key(i), encCounter(uint64(i)))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Every node serves every key locally — the writes above completed,
	// so each replica's fence covers them.
	for n := 0; n < 3; n++ {
		for i := 0; i < 20; i++ {
			v, err := cluster.Node(n).Read(ctx, key(i))
			if err != nil {
				t.Fatalf("node %d read %d: %v", n, i, err)
			}
			if decCounter(v) != uint64(i) {
				t.Fatalf("node %d read %d = %d", n, i, decCounter(v))
			}
		}
	}
	if v, err := cluster.Node(1).Read(ctx, "never-written"); err != nil || v != nil {
		t.Fatalf("absent key = %q, %v", v, err)
	}
	keys := []string{key(0), key(1), key(2), key(3)}
	vals, err := cluster.Node(2).ReadTx(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if decCounter(v) != uint64(i) {
			t.Fatalf("snapshot[%d] = %d", i, decCounter(v))
		}
	}
	requireCleanAudit(t, cluster, &fp)
}

// TestReadConformanceUnderLoad is the linearizability conformance run:
// per-key single-writer counters with concurrent per-node readers
// (monotonic reads + read-your-writes), cross-shard transfer transactions
// with concurrent snapshot readers (conserved sum, never a torn
// snapshot), and one live resize in the middle of it all.
func TestReadConformanceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance run takes seconds; skipped in -short")
	}
	var fp falsePositives
	cluster, err := caesar.NewLocalCluster(3, caesar.WithShards(4),
		caesar.WithAuditInterval(auditEvery),
		caesar.WithNodeOptions(fp.guard(caesar.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const (
		counterKeys = 6
		total       = uint64(1000)
		runFor      = 2500 * time.Millisecond
	)
	ckey := func(i int) string { return fmt.Sprintf("mono/%d", i) }

	// The transfer pair must span consensus groups to exercise real
	// cross-shard transactions.
	accA, accB := "", ""
	for i := 0; accB == ""; i++ {
		k := fmt.Sprintf("acct/%d", i)
		switch {
		case accA == "":
			accA = k
		case caesar.ShardOf(k, 4) != caesar.ShardOf(accA, 4):
			accB = k
		}
	}
	if err := cluster.Node(0).ProposeTx(ctx, []caesar.Command{
		caesar.Put(accA, encCounter(total/2)),
		caesar.Put(accB, encCounter(total/2)),
	}); err != nil {
		t.Fatalf("seed accounts: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Int64
	fail := func(format string, args ...any) {
		failed.Add(1)
		t.Errorf(format, args...)
	}

	// Writers: one per counter key, incrementing through a fixed node and
	// checking read-your-writes through the same node after each write.
	for i := 0; i < counterKeys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := cluster.Node(i % 3)
			var v uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v++
				if _, err := node.Propose(ctx, caesar.Put(ckey(i), encCounter(v))); err != nil {
					fail("writer %d: %v", i, err)
					return
				}
				got, err := node.Read(ctx, ckey(i))
				if err != nil {
					fail("writer %d read-own-write: %v", i, err)
					return
				}
				if decCounter(got) < v {
					fail("writer %d: read %d after writing %d (read-your-writes broken)", i, decCounter(got), v)
					return
				}
			}
		}(i)
	}

	// Readers: one per (node, key), asserting the counter never goes
	// backwards as observed through one node.
	for n := 0; n < 3; n++ {
		for i := 0; i < counterKeys; i++ {
			wg.Add(1)
			go func(n, i int) {
				defer wg.Done()
				node := cluster.Node(n)
				var last uint64
				for {
					select {
					case <-stop:
						return
					default:
					}
					v, err := node.Read(ctx, ckey(i))
					if err != nil {
						fail("reader n%d k%d: %v", n, i, err)
						return
					}
					cur := decCounter(v)
					if cur < last {
						fail("reader n%d k%d: counter went backwards %d → %d", n, i, last, cur)
						return
					}
					last = cur
				}
			}(n, i)
		}
	}

	// Transfer writers: atomic cross-shard transactions moving one unit
	// between the accounts; the sum is invariant at every merged point.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := cluster.Node(w + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := []caesar.Command{caesar.Add(accA, -1), caesar.Add(accB, 1)}
				if w == 1 {
					tx = []caesar.Command{caesar.Add(accA, 1), caesar.Add(accB, -1)}
				}
				if err := node.ProposeTx(ctx, tx); err != nil {
					fail("transfer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Snapshot readers: a torn snapshot (half a transaction) breaks the
	// conserved sum.
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			node := cluster.Node(n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				vals, err := node.ReadTx(ctx, []string{accA, accB})
				if err != nil {
					fail("snapshot n%d: %v", n, err)
					return
				}
				if sum := decCounter(vals[0]) + decCounter(vals[1]); sum != total {
					a0, b0 := decCounter(vals[0]), decCounter(vals[1])
					var resum []uint64
					for r := 0; r < 3; r++ {
						if v2, err2 := node.ReadTx(ctx, []string{accA, accB}); err2 == nil {
							resum = append(resum, decCounter(v2[0])+decCounter(v2[1]))
						}
					}
					fail("snapshot n%d: torn cross-shard read, a=%d b=%d sum=%d (want %d); immediate re-reads sum=%v", n, a0, b0, a0+b0, total, resum)
					return
				}
			}
		}(n)
	}

	// One live resize in the middle of the run.
	time.Sleep(runFor / 3)
	if failed.Load() == 0 {
		if err := cluster.Node(0).Resize(ctx, 6); err != nil {
			t.Errorf("mid-run resize: %v", err)
		}
	}
	time.Sleep(2 * runFor / 3)
	close(stop)
	wg.Wait()

	if cluster.Node(0).Shards() != 6 {
		t.Errorf("shards after resize = %d, want 6", cluster.Node(0).Shards())
	}
	// Final agreement: a fresh snapshot still conserves the sum.
	vals, err := cluster.Node(2).ReadTx(ctx, []string{accA, accB})
	if err != nil {
		t.Fatal(err)
	}
	if sum := decCounter(vals[0]) + decCounter(vals[1]); sum != total {
		t.Fatalf("final snapshot sum = %d, want %d", sum, total)
	}
	requireCleanAudit(t, cluster, &fp)
}
