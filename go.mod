module github.com/caesar-consensus/caesar

go 1.21
