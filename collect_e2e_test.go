package caesar

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/caesar-consensus/caesar/internal/command"
	"github.com/caesar-consensus/caesar/internal/memnet"
	"github.com/caesar-consensus/caesar/internal/timestamp"
	"github.com/caesar-consensus/caesar/internal/trace"
)

// TestCrossNodeTraceCollection runs a cluster in which every node keeps
// its OWN trace ring — the multi-process deployment shape, where no
// shared buffer exists — serves each ring over real TCP via the /tracez
// handler, and collects one command's events from all of them into a
// single causally ordered cluster timeline, exactly as cmd/caesar-trace
// does. The merged timeline must carry at least two nodes' views of the
// command (the proposer's and a remote acceptor's).
func TestCrossNodeTraceCollection(t *testing.T) {
	const n = 3
	net := memnet.New(memnet.Config{Nodes: n})
	defer net.Close()
	rings := make([]*Trace, n)
	nodes := make([]*Node, n)
	for i := range nodes {
		rings[i] = NewTrace(4096)
		node, err := newNode(net.Endpoint(timestamp.NodeID(i)), Options{Trace: rings[i]}, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// First command through node 0 gets ID c0.1.
	if _, err := nodes[0].Propose(ctx, Put("collect-key", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	id := command.ID{Node: 0, Seq: 1}

	// Propose returns on local execution; remote deliveries trail it.
	// Wait until at least two nodes' rings hold the command.
	deadline := time.Now().Add(10 * time.Second)
	for {
		have := 0
		for i := range rings {
			if len(rings[i].inner().CommandHistory(id)) > 0 {
				have++
			}
		}
		if have >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d node(s) traced %v within deadline", have, id)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Serve each node's ring over TCP, as -metrics-addr mounts /tracez.
	urls := make([]string, n)
	for i := range rings {
		srv := httptest.NewServer(trace.Handler(timestamp.NodeID(i), rings[i].inner()))
		defer srv.Close()
		urls[i] = srv.URL
	}

	dumps := trace.Collect(ctx, nil, urls, id)
	if len(dumps) != n {
		t.Fatalf("Collect returned %d dumps, want %d", len(dumps), n)
	}
	reached := 0
	for _, d := range dumps {
		if d.Err != "" {
			t.Errorf("node %v unreachable: %s", d.Node, d.Err)
		}
		if len(d.Events) > 0 {
			reached++
		}
	}
	if reached < 2 {
		t.Fatalf("command %v collected from %d node(s), want >= 2", id, reached)
	}

	merged := trace.MergeDumps(dumps)
	if len(merged) == 0 {
		t.Fatal("merged timeline is empty")
	}
	// The proposer's first event opens the timeline, and every event
	// concerns the collected command.
	if merged[0].Node != 0 {
		t.Errorf("timeline opens with %v's event, want the proposer's (p0):\n%s",
			merged[0].Node, trace.FormatTimeline(merged))
	}
	seen := map[timestamp.NodeID]bool{}
	for _, e := range merged {
		if e.Cmd != id {
			t.Fatalf("merged timeline carries foreign command %v", e.Cmd)
		}
		seen[e.Node] = true
	}
	if len(seen) < 2 {
		t.Errorf("merged timeline attributes events to %d node(s), want >= 2", len(seen))
	}
	rendered := trace.FormatTimeline(merged)
	if !strings.Contains(rendered, "propose") {
		t.Errorf("rendered timeline missing the propose milestone:\n%s", rendered)
	}
}
